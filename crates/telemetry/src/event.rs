//! Sim-time-keyed structured events and spans.
//!
//! Every record is stamped with *simulated* cluster time — never wall
//! clock — so a timeline is a pure function of the replay: the same
//! trace, configuration and seed produce the same byte sequence on
//! export regardless of worker-pool thread count, stepping mode or
//! host. Events are append-ordered; the driver records them at slice
//! boundaries on one thread, so append order is itself deterministic.

use crate::json::{write_escaped, write_f64, JsonObject};

/// A typed field value attached to a [`TimelineEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (exported as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => write_f64(*v, out),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => write_escaped(v, out),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Named fields of one event, in record order.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// Whether a timeline record is a point event or a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instantaneous record at its `at_ms`.
    Point,
    /// An interval: opened at `at_ms`, closed at `end_ms` (`None`
    /// while still open — e.g. a machine alive at replay end).
    Span {
        /// Sim time the span closed, ms (`None` while open).
        end_ms: Option<u64>,
    },
}

/// One structured record on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Sim time of the event (span start for spans), ms since replay
    /// start.
    pub at_ms: u64,
    /// Event name (`"scale"`, `"steal"`, `"forecast"`, …).
    pub name: &'static str,
    /// Point event or span.
    pub kind: EventKind,
    /// Structured payload, flattened into the JSONL line.
    pub fields: Fields,
}

impl TimelineEvent {
    /// Serializes the event as one JSONL line (no trailing newline).
    /// Field keys are flattened into the object after the reserved
    /// `type` / `at_ms` / `name` (/ `end_ms`) keys.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        match self.kind {
            EventKind::Point => {
                obj.str_field("type", "event");
                obj.u64_field("at_ms", self.at_ms);
            }
            EventKind::Span { end_ms } => {
                obj.str_field("type", "span");
                obj.u64_field("at_ms", self.at_ms);
                match end_ms {
                    Some(end) => obj.u64_field("end_ms", end),
                    None => obj.raw_field("end_ms", "null"),
                }
            }
        }
        obj.str_field("name", self.name);
        for (key, value) in &self.fields {
            let mut raw = String::new();
            value.write_json(&mut raw);
            obj.raw_field(key, &raw);
        }
        obj.finish()
    }
}

/// Handle to a span opened on a [`Timeline`], used to close it later.
///
/// The id is the span's *absolute* timeline index (its position in the
/// full append order), so it stays valid even after the retention
/// window drops the span's record from the in-memory suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// The append-ordered event log of one replay.
///
/// Spans appear at their *open* position (the record order is the
/// order things started, which is the deterministic order the driver
/// observed them); closing a span fills in its `end_ms` in place.
///
/// ## Retention
///
/// A streaming export can flush records out of the front of the log
/// ([`Timeline::pop_front`]) so only a bounded suffix stays resident.
/// The timeline keeps counting flushed records in [`Timeline::len`]
/// (`offset` + retained), and a span closed *after* its record was
/// flushed is remembered as a late close for the sink to patch
/// ([`Timeline::take_late_closes`]). [`Timeline::peak_retained`]
/// reports the high-water mark of resident records, which is what a
/// retention cap bounds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Backing store; the retained suffix is `events[head..]` and the
    /// absolute index of `events[head + i]` is `offset + i`. Flushed
    /// slots before `head` are tombstones awaiting amortized
    /// compaction.
    events: Vec<TimelineEvent>,
    /// First retained slot in `events`.
    head: usize,
    /// Number of records flushed out of the front.
    offset: usize,
    /// `(absolute index, end_ms)` closes that arrived after the span's
    /// record was flushed, in close order.
    late_closes: Vec<(usize, u64)>,
    /// High-water mark of retained records.
    peak_retained: usize,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    fn push(&mut self, event: TimelineEvent) {
        self.events.push(event);
        self.peak_retained = self.peak_retained.max(self.events.len() - self.head);
    }

    /// Appends a point event.
    pub fn record(&mut self, at_ms: u64, name: &'static str, fields: Fields) {
        self.push(TimelineEvent {
            at_ms,
            name,
            kind: EventKind::Point,
            fields,
        });
    }

    /// Opens a span at `at_ms`; close it with [`Timeline::close_span`].
    pub fn open_span(&mut self, at_ms: u64, name: &'static str, fields: Fields) -> SpanId {
        self.push(TimelineEvent {
            at_ms,
            name,
            kind: EventKind::Span { end_ms: None },
            fields,
        });
        SpanId(self.offset + (self.events.len() - self.head) - 1)
    }

    /// Closes an open span at `end_ms`. Closing an already-closed span
    /// updates its end; a stale id past the log is ignored. Closing a
    /// span whose record was already flushed records a late close for
    /// the streaming sink to patch.
    pub fn close_span(&mut self, id: SpanId, end_ms: u64) {
        if id.0 < self.offset {
            self.late_closes.push((id.0, end_ms));
            return;
        }
        if let Some(event) = self.events.get_mut(self.head + (id.0 - self.offset)) {
            if matches!(event.kind, EventKind::Span { .. }) {
                event.kind = EventKind::Span {
                    end_ms: Some(end_ms),
                };
            }
        }
    }

    /// Appends an already-closed span.
    pub fn span(&mut self, name: &'static str, start_ms: u64, end_ms: u64, fields: Fields) {
        self.push(TimelineEvent {
            at_ms: start_ms,
            name,
            kind: EventKind::Span {
                end_ms: Some(end_ms),
            },
            fields,
        });
    }

    /// The retained records, in append order. With no retention window
    /// this is the full log; under streaming it is the un-flushed
    /// suffix (absolute index of element `i` is `offset() + i`).
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events[self.head..]
    }

    /// Total number of records ever appended (flushed + retained).
    pub fn len(&self) -> usize {
        self.offset + (self.events.len() - self.head)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records flushed out of the front of the log.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// High-water mark of resident (retained) records — the quantity a
    /// retention window bounds.
    pub fn peak_retained(&self) -> usize {
        self.peak_retained
    }

    /// Removes and returns the oldest retained record together with
    /// its absolute index, or `None` when nothing is retained. This is
    /// the flush primitive a streaming sink drains from.
    pub fn pop_front(&mut self) -> Option<(usize, TimelineEvent)> {
        if self.head >= self.events.len() {
            return None;
        }
        let tombstone = TimelineEvent {
            at_ms: 0,
            name: "",
            kind: EventKind::Point,
            fields: Vec::new(),
        };
        let event = std::mem::replace(&mut self.events[self.head], tombstone);
        let index = self.offset;
        self.head += 1;
        self.offset += 1;
        // Amortized compaction: once tombstones dominate the backing
        // store, drop them in one O(retained) move.
        if self.head > 64 && self.head * 2 >= self.events.len() {
            self.events.drain(..self.head);
            self.head = 0;
        }
        Some((index, event))
    }

    /// Drains the closes that targeted already-flushed spans, in the
    /// order they happened: `(absolute index, end_ms)` pairs the sink
    /// must patch into its flushed output.
    pub fn take_late_closes(&mut self) -> Vec<(usize, u64)> {
        std::mem::take(&mut self.late_closes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_events_serialize_with_flattened_fields() {
        let mut timeline = Timeline::new();
        timeline.record(
            120,
            "steal",
            vec![
                ("from", 0u32.into()),
                ("to", 3u32.into()),
                ("moved", 2u64.into()),
            ],
        );
        assert_eq!(
            timeline.events()[0].to_json(),
            r#"{"type":"event","at_ms":120,"name":"steal","from":0,"to":3,"moved":2}"#
        );
    }

    #[test]
    fn spans_open_in_place_and_close_later() {
        let mut timeline = Timeline::new();
        let span = timeline.open_span(0, "replay", vec![("policy", "litmus-aware".into())]);
        timeline.record(20, "scale", vec![("kind", "up".into())]);
        timeline.close_span(span, 400);
        assert_eq!(timeline.len(), 2);
        assert_eq!(
            timeline.events()[0].to_json(),
            r#"{"type":"span","at_ms":0,"end_ms":400,"name":"replay","policy":"litmus-aware"}"#
        );
        // The span keeps its open position: record order is start order.
        assert_eq!(timeline.events()[1].name, "scale");
    }

    #[test]
    fn unclosed_spans_export_a_null_end() {
        let mut timeline = Timeline::new();
        timeline.open_span(5, "machine", vec![]);
        assert_eq!(
            timeline.events()[0].to_json(),
            r#"{"type":"span","at_ms":5,"end_ms":null,"name":"machine"}"#
        );
    }

    #[test]
    fn pop_front_yields_absolute_indexes_and_len_counts_flushed() {
        let mut timeline = Timeline::new();
        for at in 0..5u64 {
            timeline.record(at, "tick", vec![]);
        }
        assert_eq!(
            timeline.pop_front().map(|(i, e)| (i, e.at_ms)),
            Some((0, 0))
        );
        assert_eq!(
            timeline.pop_front().map(|(i, e)| (i, e.at_ms)),
            Some((1, 1))
        );
        assert_eq!(timeline.len(), 5);
        assert_eq!(timeline.offset(), 2);
        assert_eq!(timeline.events().len(), 3);
        assert_eq!(timeline.events()[0].at_ms, 2);
        assert_eq!(timeline.peak_retained(), 5);
    }

    #[test]
    fn closing_a_flushed_span_records_a_late_close() {
        let mut timeline = Timeline::new();
        let span = timeline.open_span(0, "replay", vec![]);
        timeline.record(1, "tick", vec![]);
        timeline.pop_front();
        timeline.close_span(span, 40);
        assert_eq!(timeline.take_late_closes(), vec![(0, 40)]);
        assert!(timeline.take_late_closes().is_empty());
    }

    #[test]
    fn span_ids_survive_compaction() {
        // Push enough and pop enough that the amortized drain runs,
        // then close a retained span by its (absolute) id.
        let mut timeline = Timeline::new();
        let mut ids = Vec::new();
        for at in 0..300u64 {
            ids.push(timeline.open_span(at, "s", vec![]));
        }
        for _ in 0..200 {
            timeline.pop_front();
        }
        timeline.close_span(ids[250], 999);
        let event = &timeline.events()[250 - 200];
        assert_eq!(event.at_ms, 250);
        assert_eq!(event.kind, EventKind::Span { end_ms: Some(999) });
        // Pops after a drain keep yielding the right records.
        assert_eq!(
            timeline.pop_front().map(|(i, e)| (i, e.at_ms)),
            Some((200, 200))
        );
    }
}
