//! The metric registry: monotonic counters, last/min/max gauges and
//! log-bucketed histograms, keyed by static names.
//!
//! The registry is a plain deterministic data structure — no atomics,
//! no interior mutability, no wall clock. The cluster driver owns one
//! per replay and updates it single-threadedly at slice boundaries, so
//! the exported state is a pure function of the replay. Names are
//! `&'static str` because every metric in the stack is declared at a
//! call site; `BTreeMap` keys make export order (and therefore the
//! JSONL byte stream) independent of insertion order.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;
use crate::json::JsonObject;

/// A last-value gauge that also tracks its range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of sets.
    pub sets: u64,
}

impl Gauge {
    fn new(value: f64) -> Self {
        Gauge {
            last: value,
            min: value,
            max: value,
            sets: 1,
        }
    }

    fn set(&mut self, value: f64) {
        self.set_n(value, 1);
    }

    fn set_n(&mut self, value: f64, n: u64) {
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sets += n;
    }

    fn to_json(self, name: &str) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("type", "gauge");
        obj.str_field("name", name);
        obj.f64_field("last", self.last);
        obj.f64_field("min", self.min);
        obj.f64_field("max", self.max);
        obj.u64_field("sets", self.sets);
        obj.finish()
    }
}

/// Deterministic metric store for one replay.
///
/// # Examples
///
/// ```
/// use litmus_telemetry::Registry;
///
/// let mut registry = Registry::new(0.01);
/// registry.inc("arrivals", 3);
/// registry.gauge_set("fleet.machines", 8.0);
/// registry.observe("queue_wait_ms", 12.5);
/// assert_eq!(registry.counter("arrivals"), 3);
/// assert_eq!(registry.histogram("queue_wait_ms").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    histogram_relative_error: f64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

impl Registry {
    /// An empty registry whose histograms guarantee
    /// `histogram_relative_error` quantile accuracy.
    pub fn new(histogram_relative_error: f64) -> Self {
        Registry {
            histogram_relative_error,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Adds `by` to the monotonic counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges
            .entry(name)
            .and_modify(|gauge| gauge.set(value))
            .or_insert_with(|| Gauge::new(value));
    }

    /// Applies `n` consecutive identical sets to gauge `name` in one
    /// update — exactly equivalent to calling [`Registry::gauge_set`]
    /// `n` times (last/min/max fold to the same state; the set count
    /// adds `n`). A no-op when `n` is zero. The bulk form exists so
    /// the cluster driver can account a skipped idle stretch without
    /// touching the gauge once per slice.
    pub fn gauge_set_n(&mut self, name: &'static str, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.gauges
            .entry(name)
            .and_modify(|gauge| gauge.set_n(value, n))
            .or_insert_with(|| {
                let mut gauge = Gauge::new(value);
                gauge.sets = n;
                gauge
            });
    }

    /// Gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Records `value` into histogram `name` (creating it with the
    /// registry's relative-error bound).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| LogHistogram::new(self.histogram_relative_error))
            .observe(value);
    }

    /// Records `n` identical samples into histogram `name` in one
    /// update (see [`LogHistogram::observe_n`] for the exactness
    /// contract). A no-op when `n` is zero — no histogram is created.
    pub fn observe_n(&mut self, name: &'static str, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms
            .entry(name)
            .or_insert_with(|| LogHistogram::new(self.histogram_relative_error))
            .observe_n(value, n);
    }

    /// Histogram `name`, if anything was ever observed into it.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &Gauge)> + '_ {
        self.gauges.iter().map(|(&name, gauge)| (name, gauge))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.histograms.iter().map(|(&name, hist)| (name, hist))
    }

    /// Appends the whole registry as JSONL lines (counters, then
    /// gauges, then histograms, each name-sorted) to `out`.
    pub(crate) fn write_jsonl(&self, out: &mut String) {
        for (name, value) in self.counters() {
            let mut obj = JsonObject::new();
            obj.str_field("type", "counter");
            obj.str_field("name", name);
            obj.u64_field("value", value);
            out.push_str(&obj.finish());
            out.push('\n');
        }
        for (name, gauge) in self.gauges() {
            out.push_str(&gauge.to_json(name));
            out.push('\n');
        }
        for (name, hist) in self.histograms() {
            out.push_str(&hist.to_json(name));
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_default_to_zero() {
        let mut registry = Registry::new(0.01);
        assert_eq!(registry.counter("missing"), 0);
        registry.inc("x", 2);
        registry.inc("x", 3);
        assert_eq!(registry.counter("x"), 5);
    }

    #[test]
    fn gauges_track_last_min_max() {
        let mut registry = Registry::new(0.01);
        for v in [4.0, 2.0, 9.0] {
            registry.gauge_set("fleet", v);
        }
        let gauge = registry.gauge("fleet").unwrap();
        assert_eq!(
            (gauge.last, gauge.min, gauge.max, gauge.sets),
            (9.0, 2.0, 9.0, 3)
        );
    }

    #[test]
    fn bulk_gauge_set_equals_repeated_sets() {
        let mut bulk = Registry::new(0.01);
        let mut repeated = Registry::new(0.01);
        repeated.gauge_set("fleet", 4.0);
        bulk.gauge_set("fleet", 4.0);
        for _ in 0..999 {
            repeated.gauge_set("fleet", 6.0);
        }
        bulk.gauge_set_n("fleet", 6.0, 999);
        assert_eq!(bulk, repeated);
        // n = 0 neither updates nor creates.
        bulk.gauge_set_n("fleet", 100.0, 0);
        bulk.gauge_set_n("ghost", 1.0, 0);
        assert_eq!(bulk, repeated);
        assert!(bulk.gauge("ghost").is_none());
    }

    #[test]
    fn bulk_observe_of_zero_equals_repeated_observes() {
        let mut bulk = Registry::new(0.01);
        let mut repeated = Registry::new(0.01);
        repeated.observe("slice.admitted", 3.0);
        bulk.observe("slice.admitted", 3.0);
        for _ in 0..1_000 {
            repeated.observe("slice.admitted", 0.0);
        }
        bulk.observe_n("slice.admitted", 0.0, 1_000);
        // Bit-equality, including the float sum: adding 0.0 a thousand
        // times is the identity, same as one fused 0.0 × 1000 add.
        assert_eq!(bulk, repeated);
        // n = 0 creates no histogram.
        bulk.observe_n("ghost", 1.0, 0);
        assert!(bulk.histogram("ghost").is_none());
        assert_eq!(bulk, repeated);
    }

    #[test]
    fn export_order_is_name_sorted_not_insertion_sorted() {
        let mut a = Registry::new(0.01);
        a.inc("zebra", 1);
        a.inc("alpha", 1);
        let mut b = Registry::new(0.01);
        b.inc("alpha", 1);
        b.inc("zebra", 1);
        let (mut ja, mut jb) = (String::new(), String::new());
        a.write_jsonl(&mut ja);
        b.write_jsonl(&mut jb);
        assert_eq!(ja, jb);
        assert!(ja.find("alpha").unwrap() < ja.find("zebra").unwrap());
    }
}
