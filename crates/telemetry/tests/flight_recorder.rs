//! Flight-recorder edge cases: degenerate capacities, exact
//! wraparound, and the ring-is-a-suffix invariant under arbitrary
//! event streams.

use litmus_telemetry::{EventKind, FlightRecorder, Telemetry, TelemetryConfig, TimelineEvent};
use proptest::prelude::*;

fn tick(at_ms: u64) -> TimelineEvent {
    TimelineEvent {
        at_ms,
        name: "tick",
        kind: EventKind::Point,
        fields: vec![("n", at_ms.into())],
    }
}

#[test]
fn capacity_zero_clamps_to_one_and_keeps_the_newest() {
    let mut recorder = FlightRecorder::new(0);
    assert_eq!(recorder.capacity(), 1);
    assert!(recorder.is_empty());
    for at in 0..5 {
        recorder.record(tick(at));
    }
    assert_eq!(recorder.len(), 1);
    assert_eq!(recorder.seen(), 5);
    assert_eq!(recorder.dropped(), 4);
    assert_eq!(recorder.dump().map(|e| e.at_ms).collect::<Vec<_>>(), [4]);
}

#[test]
fn capacity_one_always_holds_exactly_the_last_event() {
    let mut recorder = FlightRecorder::new(1);
    for at in 10..20 {
        recorder.record(tick(at));
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.dump().next().unwrap().at_ms, at);
    }
    assert_eq!(recorder.dropped(), 9);
}

#[test]
fn exact_wraparound_preserves_tail_order() {
    // Record exactly 2× capacity so the ring wraps through every slot
    // once: the survivors must be the last `capacity` events, oldest
    // first, with no seam at the wrap point.
    let capacity = 7;
    let mut recorder = FlightRecorder::new(capacity);
    for at in 0..(2 * capacity as u64) {
        recorder.record(tick(at));
    }
    let kept: Vec<u64> = recorder.dump().map(|e| e.at_ms).collect();
    let expected: Vec<u64> = (capacity as u64..2 * capacity as u64).collect();
    assert_eq!(kept, expected);
    assert_eq!(recorder.seen(), 2 * capacity as u64);
    assert_eq!(recorder.dropped(), capacity as u64);
}

#[test]
fn filling_exactly_to_capacity_evicts_nothing() {
    let mut recorder = FlightRecorder::new(4);
    for at in 0..4 {
        recorder.record(tick(at));
    }
    assert_eq!(recorder.dropped(), 0);
    assert_eq!(
        recorder.dump().map(|e| e.at_ms).collect::<Vec<_>>(),
        [0, 1, 2, 3]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The recorder's dump is always exactly the suffix of the full
    /// point-event timeline, for any capacity and stream length —
    /// recorded through the real `Telemetry` front door so the
    /// timeline and the ring see the same stream.
    #[test]
    fn recorded_tail_is_the_timeline_suffix(
        (capacity, events) in (0usize..33, 0u64..200)
    ) {
        let config = TelemetryConfig::default().flight_capacity(capacity);
        let mut telemetry = Telemetry::new(config);
        for at in 0..events {
            telemetry.event(at * 3, "tick", vec![("n", at.into())]);
        }
        let full = telemetry.timeline().events();
        let tail: Vec<&TimelineEvent> = telemetry.recorder().dump().collect();
        let keep = capacity.max(1).min(full.len());
        let suffix: Vec<&TimelineEvent> = full[full.len() - keep..].iter().collect();
        prop_assert_eq!(tail, suffix);
        prop_assert_eq!(telemetry.recorder().seen(), events);
        prop_assert_eq!(
            telemetry.recorder().dropped(),
            events - keep.min(events as usize) as u64
        );
    }
}
