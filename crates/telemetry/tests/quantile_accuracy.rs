//! Histogram quantile accuracy against the *exact* nearest-rank
//! quantile, on adversarial distributions — plus export determinism.
//!
//! The [`litmus_telemetry::LogHistogram`] promises every reported
//! quantile is within relative error `α` of the exact quantile of the
//! recorded samples. These tests hold it to that promise on the shapes
//! that break naive sketches: constants, multi-decade geometric
//! spreads, heavy tails where p99 is thousands of times p50, samples
//! clustered right at bucket boundaries, and zero-heavy series.

use litmus_telemetry::{LogHistogram, Telemetry, TelemetryConfig};
use proptest::prelude::*;

/// Exact nearest-rank quantile, mirroring the histogram's rank rule.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Asserts every probed quantile of `values` is within `alpha`
/// relative error of the exact nearest-rank quantile.
fn assert_quantiles_within(values: &[f64], alpha: f64) {
    let mut hist = LogHistogram::new(alpha);
    for &v in values {
        hist.observe(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let approx = hist.quantile(q);
        if exact == 0.0 {
            assert_eq!(approx, 0.0, "q={q}: zero quantile must be exact");
        } else {
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= alpha + 1e-12,
                "q={q}: exact {exact}, approx {approx}, rel err {rel} > α={alpha}"
            );
        }
    }
}

#[test]
fn constant_distribution_is_exact_to_alpha() {
    for alpha in [0.001, 0.01, 0.05] {
        assert_quantiles_within(&vec![37.2; 500], alpha);
    }
}

#[test]
fn geometric_spread_across_nine_decades() {
    // 1e-3 .. 1e6, log-uniform-ish: the worst case for linear buckets,
    // the design case for log buckets.
    let values: Vec<f64> = (0..900)
        .map(|i| 1e-3 * 10f64.powf(i as f64 / 100.0))
        .collect();
    for alpha in [0.005, 0.01, 0.05] {
        assert_quantiles_within(&values, alpha);
    }
}

#[test]
fn heavy_tail_p99_thousands_of_times_p50() {
    // 99% of mass near 1ms, 1% near 10s — the serverless cold-start
    // shape. Quantiles in the tail must stay within α too.
    let mut values = vec![1.0; 990];
    values.extend((0..10).map(|i| 10_000.0 + 137.0 * i as f64));
    assert_quantiles_within(&values, 0.01);
}

#[test]
fn samples_at_bucket_boundaries() {
    // γ-power values land exactly on bucket upper bounds, where the
    // ceil-index rule is most delicate.
    let alpha = 0.01;
    let gamma: f64 = (1.0 + alpha) / (1.0 - alpha);
    let values: Vec<f64> = (1..400).map(|i| gamma.powi(i / 4)).collect();
    assert_quantiles_within(&values, alpha);
}

#[test]
fn zero_heavy_series_keep_zero_quantiles_exact() {
    let mut values = vec![0.0; 700];
    values.extend((1..=300).map(|i| i as f64 * 0.5));
    assert_quantiles_within(&values, 0.01);
}

#[test]
fn tiny_and_huge_magnitudes_in_one_series() {
    let values: Vec<f64> = (0..50)
        .map(|i| 1e-4 * (i + 1) as f64)
        .chain((0..50).map(|i| 1e9 + 1e7 * i as f64))
        .collect();
    assert_quantiles_within(&values, 0.02);
}

proptest! {
    #[test]
    fn quantile_error_is_bounded_on_random_positive_samples(
        values in prop::collection::vec(1e-3f64..1e6, 1..400),
        alpha in 0.002f64..0.1,
    ) {
        let mut hist = LogHistogram::new(alpha);
        for &v in &values {
            hist.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = hist.quantile(q);
            prop_assert!(
                (approx - exact).abs() <= alpha * exact + 1e-12,
                "q={}, exact={}, approx={}", q, exact, approx
            );
        }
    }

    #[test]
    fn observation_order_never_changes_state_or_export(
        values in prop::collection::vec(1e-3f64..1e6, 2..200),
    ) {
        let mut forward = LogHistogram::new(0.01);
        let mut reverse = LogHistogram::new(0.01);
        for &v in &values {
            forward.observe(v);
        }
        for &v in values.iter().rev() {
            reverse.observe(v);
        }
        // Counts and buckets are order-independent; `sum` is the one
        // field accumulated in fp order, so compare it with tolerance
        // and everything else exactly.
        prop_assert_eq!(forward.count(), reverse.count());
        prop_assert_eq!(forward.buckets().collect::<Vec<_>>(), reverse.buckets().collect::<Vec<_>>());
        prop_assert_eq!(forward.quantile(0.5), reverse.quantile(0.5));
        prop_assert!((forward.sum() - reverse.sum()).abs() <= 1e-9 * forward.sum().abs().max(1.0));
    }

    #[test]
    fn sharded_merge_matches_single_histogram(
        values in prop::collection::vec(1e-3f64..1e6, 1..200),
        shards in 2usize..5,
    ) {
        let mut whole = LogHistogram::new(0.01);
        let mut parts: Vec<LogHistogram> = (0..shards).map(|_| LogHistogram::new(0.01)).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            parts[i % shards].observe(v);
        }
        let mut merged = parts.remove(0);
        for part in &parts {
            prop_assert!(merged.merge(part));
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.buckets().collect::<Vec<_>>(), whole.buckets().collect::<Vec<_>>());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }
}

#[test]
fn jsonl_export_is_reproducible_and_insertion_order_free() {
    let build = |flip: bool| {
        let mut telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.set_meta("trace", "fixture");
        let names: [&'static str; 2] = if flip {
            ["zeta.count", "alpha.count"]
        } else {
            ["alpha.count", "zeta.count"]
        };
        for name in names {
            telemetry.inc(name, 3);
        }
        telemetry.observe("slice.admitted", 4.0);
        telemetry.event(
            20,
            "scale",
            vec![("kind", "up".into()), ("machine", 1u32.into())],
        );
        telemetry.event(
            40,
            "steal",
            vec![("from", 0u32.into()), ("to", 1u32.into())],
        );
        telemetry.to_jsonl()
    };
    let a = build(false);
    let b = build(true);
    assert_eq!(
        a, b,
        "registry insertion order must not leak into the export"
    );
    assert_eq!(a, build(false), "repeated export must be byte-identical");
}
