//! Property-based tests for the statistics substrate.

use litmus_stats::{
    geometric_mean, log_blend, log_weight, mean, normalize_to, percentile, LevelTable, LinearFit,
    LogFit, Summary,
};
use proptest::prelude::*;

fn finite_positive() -> impl Strategy<Value = f64> {
    (0.001f64..1e6).prop_map(|v| v)
}

proptest! {
    #[test]
    fn mean_lies_between_min_and_max(xs in prop::collection::vec(-1e6f64..1e6, 1..64)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn gmean_le_mean(xs in prop::collection::vec(finite_positive(), 1..64)) {
        // AM-GM inequality.
        let g = geometric_mean(&xs).unwrap();
        let a = mean(&xs).unwrap();
        prop_assert!(g <= a * (1.0 + 1e-9));
    }

    #[test]
    fn gmean_scale_invariance(
        xs in prop::collection::vec(0.01f64..1e3, 1..32),
        k in 0.01f64..1e3,
    ) {
        // gmean(k·xs) = k·gmean(xs)
        let g1 = geometric_mean(&xs).unwrap();
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let g2 = geometric_mean(&scaled).unwrap();
        prop_assert!((g2 / g1 / k - 1.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_monotone_in_p(
        xs in prop::collection::vec(-1e3f64..1e3, 2..64),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let v_lo = percentile(&xs, lo).unwrap();
        let v_hi = percentile(&xs, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-9);
    }

    #[test]
    fn linear_fit_recovers_line(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..40,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope() - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept() - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        prop_assert!(fit.r_squared() > 1.0 - 1e-9);
    }

    #[test]
    fn linear_fit_r2_in_unit_interval(
        pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..32),
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        if let Ok(fit) = LinearFit::fit(&xs, &ys) {
            prop_assert!(fit.r_squared() <= 1.0 + 1e-9);
            prop_assert!(fit.r_squared() >= -1e-9);
        }
    }

    #[test]
    fn log_fit_round_trips(
        a in -10.0f64..10.0,
        b in 0.1f64..10.0,
        probe in 1.0f64..1000.0,
    ) {
        let xs: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x.ln()).collect();
        let fit = LogFit::fit(&xs, &ys).unwrap();
        let y = fit.predict(probe);
        let x = fit.invert(y).unwrap();
        prop_assert!((x - probe).abs() < 1e-4 * probe);
    }

    #[test]
    fn log_weight_is_clamped_and_monotone(
        lo in 1.0f64..100.0,
        span in 1.5f64..100.0,
        v1 in 0.1f64..1e5,
        v2 in 0.1f64..1e5,
    ) {
        let hi = lo * span;
        let w1 = log_weight(v1, lo, hi).unwrap();
        let w2 = log_weight(v2, lo, hi).unwrap();
        prop_assert!((0.0..=1.0).contains(&w1));
        prop_assert!((0.0..=1.0).contains(&w2));
        if v1 <= v2 {
            prop_assert!(w1 <= w2 + 1e-12);
        }
    }

    #[test]
    fn log_blend_stays_in_estimate_bracket(
        lo in 1.0f64..100.0,
        span in 1.5f64..100.0,
        v in 0.1f64..1e5,
        e_lo in 0.0f64..0.5,
        e_hi in 0.0f64..0.5,
    ) {
        let hi = lo * span;
        let blended = log_blend(v, lo, hi, e_lo, e_hi).unwrap();
        let (min_e, max_e) = if e_lo <= e_hi { (e_lo, e_hi) } else { (e_hi, e_lo) };
        prop_assert!(blended >= min_e - 1e-12 && blended <= max_e + 1e-12);
    }

    #[test]
    fn level_table_value_within_row_values(
        // Strictly increasing rows via cumulative sums.
        deltas in prop::collection::vec((0.1f64..5.0, 0.01f64..2.0), 2..16),
        probe in 0.0f64..100.0,
    ) {
        let mut level = 0.0;
        let mut value = 1.0;
        let mut rows = Vec::new();
        for (dl, dv) in &deltas {
            level += dl;
            value += dv;
            rows.push((level, value));
        }
        let table = LevelTable::new(rows.clone()).unwrap();
        let v = table.value_at(probe).unwrap();
        let min_v = rows.first().unwrap().1;
        let max_v = rows.last().unwrap().1;
        prop_assert!(v >= min_v - 1e-9 && v <= max_v + 1e-9);
        // Inverse round-trip within range.
        let l = table.level_for(v).unwrap();
        let v2 = table.value_at(l).unwrap();
        prop_assert!((v - v2).abs() < 1e-6);
    }

    #[test]
    fn normalize_then_scale_is_identity(
        xs in prop::collection::vec(-1e3f64..1e3, 1..32),
        baseline in 0.5f64..100.0,
    ) {
        let normalized = normalize_to(&xs, baseline).unwrap();
        for (orig, norm) in xs.iter().zip(&normalized) {
            prop_assert!((norm * baseline - orig).abs() < 1e-7 * (1.0 + orig.abs()));
        }
    }

    #[test]
    fn summary_invariants(xs in prop::collection::vec(0.01f64..1e4, 1..64)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.gmean <= s.mean + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }
}
