use crate::error::StatsError;
use crate::Result;

/// A monotone-index lookup table with linear interpolation between levels.
///
/// The paper's congestion and performance tables (Fig. 5) hold slowdowns
/// at *discrete* stress levels, while a Litmus test observes a
/// *continuous* congestion state; §6 step 3 therefore interpolates
/// between table rows. `LevelTable` captures that pattern: rows are
/// `(level, value)` pairs sorted by level, queried either by level
/// (forward) or by value (inverse, when the values are monotone).
///
/// # Examples
///
/// ```
/// use litmus_stats::LevelTable;
///
/// let table = LevelTable::new(vec![(1.0, 1.02), (2.0, 1.08), (4.0, 1.20)]).unwrap();
/// assert!((table.value_at(3.0).unwrap() - 1.14).abs() < 1e-12);
/// assert!((table.level_for(1.14).unwrap() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTable {
    rows: Vec<(f64, f64)>,
}

impl LevelTable {
    /// Builds a table from `(level, value)` rows.
    ///
    /// Rows are sorted by level; duplicate levels are rejected.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InsufficientSamples`] with fewer than 2 rows.
    /// * [`StatsError::NonFinite`] if any coordinate is NaN or infinite.
    /// * [`StatsError::Domain`] if two rows share a level.
    pub fn new(mut rows: Vec<(f64, f64)>) -> Result<Self> {
        if rows.len() < 2 {
            return Err(StatsError::InsufficientSamples {
                got: rows.len(),
                need: 2,
            });
        }
        if rows.iter().any(|(l, v)| !l.is_finite() || !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        if rows.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(StatsError::Domain("duplicate levels in table"));
        }
        Ok(LevelTable { rows })
    }

    /// The sorted `(level, value)` rows.
    pub fn rows(&self) -> &[(f64, f64)] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Smallest and largest level in the table.
    pub fn level_range(&self) -> (f64, f64) {
        (self.rows[0].0, self.rows[self.rows.len() - 1].0)
    }

    /// Value at `level`, linearly interpolated; clamped to the end rows
    /// outside the covered range (matching the paper's use of the
    /// extreme generator levels as bounds).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] if `level` is NaN or infinite.
    pub fn value_at(&self, level: f64) -> Result<f64> {
        if !level.is_finite() {
            return Err(StatsError::NonFinite);
        }
        let first = self.rows[0];
        let last = self.rows[self.rows.len() - 1];
        if level <= first.0 {
            return Ok(first.1);
        }
        if level >= last.0 {
            return Ok(last.1);
        }
        let idx = self
            .rows
            .partition_point(|(l, _)| *l <= level)
            .min(self.rows.len() - 1);
        let (l0, v0) = self.rows[idx - 1];
        let (l1, v1) = self.rows[idx];
        let t = (level - l0) / (l1 - l0);
        Ok(v0 + (v1 - v0) * t)
    }

    /// Inverse lookup: the level whose interpolated value equals `value`.
    ///
    /// Requires the values to be strictly monotone (increasing or
    /// decreasing); out-of-range values clamp to the end levels. This is
    /// how an observed startup slowdown is converted into a congestion
    /// level against the congestion table.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NonFinite`] if `value` is NaN or infinite.
    /// * [`StatsError::Domain`] if the table values are not strictly
    ///   monotone.
    pub fn level_for(&self, value: f64) -> Result<f64> {
        if !value.is_finite() {
            return Err(StatsError::NonFinite);
        }
        let increasing = self.rows.windows(2).all(|w| w[0].1 < w[1].1);
        let decreasing = self.rows.windows(2).all(|w| w[0].1 > w[1].1);
        if !increasing && !decreasing {
            return Err(StatsError::Domain(
                "inverse lookup requires strictly monotone values",
            ));
        }
        let cmp = |row_val: f64| {
            if increasing {
                row_val <= value
            } else {
                row_val >= value
            }
        };
        let first = self.rows[0];
        let last = self.rows[self.rows.len() - 1];
        if !cmp(first.1) {
            return Ok(first.0);
        }
        if cmp(last.1) {
            return Ok(last.0);
        }
        let idx = self
            .rows
            .partition_point(|(_, v)| cmp(*v))
            .min(self.rows.len() - 1);
        let (l0, v0) = self.rows[idx - 1];
        let (l1, v1) = self.rows[idx];
        let t = (value - v0) / (v1 - v0);
        Ok(l0 + (l1 - l0) * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LevelTable {
        LevelTable::new(vec![(1.0, 1.02), (2.0, 1.08), (4.0, 1.20), (8.0, 1.50)]).unwrap()
    }

    #[test]
    fn exact_levels_return_exact_values() {
        let t = table();
        assert_eq!(t.value_at(2.0).unwrap(), 1.08);
        assert_eq!(t.value_at(8.0).unwrap(), 1.50);
    }

    #[test]
    fn interpolates_between_levels() {
        let t = table();
        let v = t.value_at(6.0).unwrap();
        assert!((v - 1.35).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_range() {
        let t = table();
        assert_eq!(t.value_at(0.0).unwrap(), 1.02);
        assert_eq!(t.value_at(100.0).unwrap(), 1.50);
    }

    #[test]
    fn inverse_lookup_round_trips() {
        let t = table();
        for level in [1.0, 1.5, 2.0, 3.0, 5.5, 8.0] {
            let v = t.value_at(level).unwrap();
            let l = t.level_for(v).unwrap();
            assert!((l - level).abs() < 1e-9, "level {level} vs {l}");
        }
    }

    #[test]
    fn inverse_lookup_clamps() {
        let t = table();
        assert_eq!(t.level_for(1.0).unwrap(), 1.0);
        assert_eq!(t.level_for(2.0).unwrap(), 8.0);
    }

    #[test]
    fn inverse_lookup_on_decreasing_values() {
        let t = LevelTable::new(vec![(1.0, 0.9), (2.0, 0.7), (3.0, 0.4)]).unwrap();
        let l = t.level_for(0.55).unwrap();
        assert!((l - 2.5).abs() < 1e-9);
    }

    #[test]
    fn non_monotone_values_reject_inverse() {
        let t = LevelTable::new(vec![(1.0, 1.0), (2.0, 2.0), (3.0, 1.5)]).unwrap();
        assert!(matches!(t.level_for(1.2), Err(StatsError::Domain(_))));
    }

    #[test]
    fn duplicate_levels_rejected() {
        assert!(matches!(
            LevelTable::new(vec![(1.0, 1.0), (1.0, 2.0)]),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn needs_two_rows() {
        assert!(matches!(
            LevelTable::new(vec![(1.0, 1.0)]),
            Err(StatsError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn rows_are_sorted_after_construction() {
        let t = LevelTable::new(vec![(3.0, 1.3), (1.0, 1.1), (2.0, 1.2)]).unwrap();
        let levels: Vec<f64> = t.rows().iter().map(|r| r.0).collect();
        assert_eq!(levels, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.level_range(), (1.0, 3.0));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
