use crate::error::{ensure_finite, StatsError};
use crate::linreg::LinearFit;
use crate::Result;

/// Exponential least-squares fit `y = exp(a + b·x)` (linear in `ln y`).
///
/// Paper Fig. 10(a) plots each traffic generator's **L3 miss count**
/// against the startup slowdown on a logarithmic y-axis — a straight
/// line there is exactly this model. The Litmus discount interpolation
/// evaluates both generators' curves at the observed startup slowdown to
/// obtain the L3-miss bracket, then places the observed miss count
/// between them in log space (see [`crate::log_weight`]).
///
/// # Examples
///
/// ```
/// use litmus_stats::ExpFit;
///
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [10.0, 100.0, 1000.0]; // y = 10^x
/// let fit = ExpFit::fit(&xs, &ys).unwrap();
/// assert!((fit.predict(4.0) - 10_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpFit {
    inner: LinearFit,
}

impl ExpFit {
    /// Fits `y = exp(a + b·x)` by least squares on `(x, ln y)`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::Domain`] if any `y` is not strictly positive.
    /// * All error conditions of [`LinearFit::fit`] on the transformed
    ///   coordinates.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        ensure_finite(ys)?;
        if ys.iter().any(|&y| y <= 0.0) {
            return Err(StatsError::Domain(
                "exponential fit requires strictly positive y values",
            ));
        }
        let ln_ys: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
        Ok(ExpFit {
            inner: LinearFit::fit(xs, &ln_ys)?,
        })
    }

    /// Additive coefficient `a` in `y = exp(a + b·x)`.
    pub fn intercept(&self) -> f64 {
        self.inner.intercept()
    }

    /// Exponential slope `b` in `y = exp(a + b·x)`.
    pub fn coefficient(&self) -> f64 {
        self.inner.slope()
    }

    /// Coefficient of determination in log space.
    pub fn r_squared(&self) -> f64 {
        self.inner.r_squared()
    }

    /// Evaluates the fitted curve at `x`; always strictly positive.
    pub fn predict(&self, x: f64) -> f64 {
        self.inner.predict(x).exp()
    }

    /// Inverts the curve: the `x` whose prediction equals `y`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::Domain`] if `y` is not strictly positive.
    /// * [`StatsError::DegenerateX`] if the slope is zero.
    pub fn invert(&self, y: f64) -> Result<f64> {
        if y <= 0.0 {
            return Err(StatsError::Domain(
                "exponential inversion requires strictly positive y",
            ));
        }
        self.inner.invert(y.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_exponential() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (1.2 + 0.8 * x).exp()).collect();
        let fit = ExpFit::fit(&xs, &ys).unwrap();
        assert!((fit.intercept() - 1.2).abs() < 1e-9);
        assert!((fit.coefficient() - 0.8).abs() < 1e-9);
        assert!((fit.r_squared() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predictions_are_positive() {
        let fit = ExpFit::fit(&[1.0, 2.0, 3.0], &[5.0, 2.0, 1.0]).unwrap();
        assert!(fit.predict(-100.0) > 0.0);
        assert!(fit.predict(100.0) > 0.0);
    }

    #[test]
    fn rejects_non_positive_y() {
        assert!(matches!(
            ExpFit::fit(&[1.0, 2.0], &[1.0, 0.0]),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn invert_round_trips() {
        let xs = [1.0f64, 1.5, 2.0, 2.5];
        let ys: Vec<f64> = xs.iter().map(|x| (0.5 + 2.0 * x).exp()).collect();
        let fit = ExpFit::fit(&xs, &ys).unwrap();
        let y = fit.predict(1.8);
        assert!((fit.invert(y).unwrap() - 1.8).abs() < 1e-9);
        assert!(fit.invert(-1.0).is_err());
    }
}
