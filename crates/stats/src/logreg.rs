use crate::error::{ensure_finite, StatsError};
use crate::linreg::LinearFit;
use crate::Result;

/// Logarithmic least-squares fit `y = a + b·ln(x)`.
///
/// Paper Fig. 10(a) relates a Litmus test's observed **L3 miss count** to
/// the startup slowdown for each traffic generator on a logarithmic axis;
/// Fig. 14 shows context-switch overhead growing logarithmically with the
/// number of co-resident functions. Both are `y = a + b·ln(x)` shapes, fit
/// here by transforming x and delegating to [`LinearFit`].
///
/// # Examples
///
/// ```
/// use litmus_stats::LogFit;
///
/// let xs = [1.0, 10.0, 100.0];
/// let ys = [0.0, 2.0, 4.0]; // y = 2·log10(x) = (2/ln 10)·ln x
/// let fit = LogFit::fit(&xs, &ys).unwrap();
/// assert!((fit.predict(1000.0) - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogFit {
    inner: LinearFit,
}

impl LogFit {
    /// Fits `y = a + b·ln(x)` by least squares on `(ln x, y)`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::Domain`] if any `x` is not strictly positive.
    /// * All error conditions of [`LinearFit::fit`] on the transformed
    ///   coordinates (length mismatch, fewer than 2 samples, NaN input,
    ///   constant `x`).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        ensure_finite(xs)?;
        if xs.iter().any(|&x| x <= 0.0) {
            return Err(StatsError::Domain(
                "logarithmic fit requires strictly positive x values",
            ));
        }
        let ln_xs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        Ok(LogFit {
            inner: LinearFit::fit(&ln_xs, ys)?,
        })
    }

    /// Additive coefficient `a` in `y = a + b·ln(x)`.
    pub fn intercept(&self) -> f64 {
        self.inner.intercept()
    }

    /// Logarithmic coefficient `b` in `y = a + b·ln(x)`.
    pub fn coefficient(&self) -> f64 {
        self.inner.slope()
    }

    /// Coefficient of determination in transformed space.
    pub fn r_squared(&self) -> f64 {
        self.inner.r_squared()
    }

    /// Evaluates the fitted curve at `x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x <= 0`; in release builds returns a
    /// non-finite value (as `ln` of a non-positive number is undefined).
    pub fn predict(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "LogFit::predict requires x > 0");
        self.inner.predict(x.ln())
    }

    /// Inverts the curve: the `x` whose prediction equals `y`.
    ///
    /// Used to turn an observed startup slowdown into the L3-miss count a
    /// given traffic generator would exhibit at the same slowdown (the
    /// lower/upper bounds in paper Fig. 10 step ③).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DegenerateX`] if the logarithmic coefficient
    /// is zero.
    pub fn invert(&self, y: f64) -> Result<f64> {
        Ok(self.inner.invert(y)?.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_logarithmic_curve() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 + 0.25 * x.ln()).collect();
        let fit = LogFit::fit(&xs, &ys).unwrap();
        assert!((fit.intercept() - 1.5).abs() < 1e-12);
        assert!((fit.coefficient() - 0.25).abs() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_positive_x() {
        assert!(matches!(
            LogFit::fit(&[0.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::Domain(_))
        ));
        assert!(matches!(
            LogFit::fit(&[-1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn invert_round_trips() {
        let xs = [1.0f64, 4.0, 9.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x.ln()).collect();
        let fit = LogFit::fit(&xs, &ys).unwrap();
        let x = fit.invert(2.0 + 3.0 * 7.0_f64.ln()).unwrap();
        assert!((x - 7.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_growth_shape() {
        // A logarithmic curve grows fast early and flattens out — the
        // Fig. 14 behaviour the sharing-overhead model depends on.
        let xs: Vec<f64> = (1..=25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 0.01 * x.ln()).collect();
        let fit = LogFit::fit(&xs, &ys).unwrap();
        let early = fit.predict(5.0) - fit.predict(1.0);
        let late = fit.predict(25.0) - fit.predict(21.0);
        assert!(early > 5.0 * late, "growth must decelerate");
    }
}
