//! Statistics substrate for the Litmus pricing reproduction.
//!
//! The Litmus pricing scheme (Pei, Wang, Shin — ASPLOS '24) leans on a
//! small set of numerical tools:
//!
//! * **least-squares linear regression** — mapping the slowdown of a
//!   language runtime's startup phase to the slowdown of reference
//!   functions (paper Fig. 9 builds one regression per traffic generator);
//! * **logarithmic regression** — relating observed L3 miss counts to
//!   congestion intensity (paper Fig. 10(a) is drawn on a log axis);
//! * **logarithmic interpolation** — placing a machine state between the
//!   two extreme congestion scenarios created by CT-Gen and MB-Gen (paper
//!   Fig. 10, steps ①–③);
//! * **summary statistics** — geometric means of per-function slowdowns
//!   (every table entry in paper Fig. 5 is a gmean) and error summaries.
//!
//! This crate implements those tools with no dependencies so that the rest
//! of the workspace (`litmus-sim`, `litmus-core`, …) can share them.
//!
//! # Examples
//!
//! ```
//! use litmus_stats::{LinearFit, geometric_mean};
//!
//! // Startup slowdown (x) vs reference-function slowdown (y).
//! let xs = [1.0, 1.2, 1.5, 2.0];
//! let ys = [1.0, 1.1, 1.25, 1.5];
//! let fit = LinearFit::fit(&xs, &ys).unwrap();
//! assert!(fit.r_squared() > 0.99);
//! assert!((fit.predict(1.2) - 1.1).abs() < 0.02);
//!
//! let g = geometric_mean(&[1.1, 1.2, 1.3]).unwrap();
//! assert!(g > 1.1 && g < 1.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expfit;
mod interp;
mod linreg;
mod logreg;
mod summary;
mod table;

pub use error::StatsError;
pub use expfit::ExpFit;
pub use interp::{lerp, log_blend, log_weight, LogInterpolator};
pub use linreg::LinearFit;
pub use logreg::LogFit;
pub use summary::{geometric_mean, mean, normalize_to, percentile, stddev, variance, Summary};
pub use table::LevelTable;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
