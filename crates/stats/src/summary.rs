use crate::error::{ensure_finite, StatsError};
use crate::Result;

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFinite`] if any value is NaN or infinite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), litmus_stats::StatsError> {
/// assert_eq!(litmus_stats::mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok(()) }
/// ```
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    ensure_finite(values)?;
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean of a slice of strictly positive values.
///
/// The paper aggregates per-function slowdowns with geometric means (every
/// performance-table entry in Fig. 5 is the gmean of reference-function
/// slowdowns), so this is the aggregation primitive used throughout the
/// workspace.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice,
/// [`StatsError::NonFinite`] for NaN/infinite input, and
/// [`StatsError::Domain`] if any value is not strictly positive.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), litmus_stats::StatsError> {
/// let g = litmus_stats::geometric_mean(&[2.0, 8.0])?;
/// assert!((g - 4.0).abs() < 1e-12);
/// # Ok(()) }
/// ```
pub fn geometric_mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    ensure_finite(values)?;
    if values.iter().any(|&v| v <= 0.0) {
        return Err(StatsError::Domain(
            "geometric mean requires strictly positive values",
        ));
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Ok((log_sum / values.len() as f64).exp())
}

/// Population variance of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFinite`] for NaN/infinite input.
pub fn variance(values: &[f64]) -> Result<f64> {
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(ss / values.len() as f64)
}

/// Population standard deviation of a slice.
///
/// # Errors
///
/// Same conditions as [`variance`].
pub fn stddev(values: &[f64]) -> Result<f64> {
    Ok(variance(values)?.sqrt())
}

/// Linearly-interpolated percentile (`p` in `[0, 100]`) of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice,
/// [`StatsError::NonFinite`] for NaN/infinite input, and
/// [`StatsError::Domain`] if `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), litmus_stats::StatsError> {
/// let median = litmus_stats::percentile(&[3.0, 1.0, 2.0], 50.0)?;
/// assert_eq!(median, 2.0);
/// # Ok(()) }
/// ```
pub fn percentile(values: &[f64], p: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    ensure_finite(values)?;
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::Domain("percentile must lie in [0, 100]"));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Divides every element of `values` by `baseline`, yielding the
/// "normalised to solo execution" series the paper plots in Figs. 2, 3,
/// 8, 11 and 13.
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if `baseline` is zero or non-finite, and
/// [`StatsError::NonFinite`] if any input value is NaN or infinite.
pub fn normalize_to(values: &[f64], baseline: f64) -> Result<Vec<f64>> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::Domain("baseline must be finite and non-zero"));
    }
    ensure_finite(values)?;
    Ok(values.iter().map(|v| v / baseline).collect())
}

/// Aggregate summary of a sample: count, mean, gmean, spread and extremes.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), litmus_stats::StatsError> {
/// let s = litmus_stats::Summary::of(&[1.0, 1.1, 1.3])?;
/// assert_eq!(s.count, 3);
/// assert!(s.min <= s.gmean && s.gmean <= s.max);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (requires positive samples).
    pub gmean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `values`.
    ///
    /// # Errors
    ///
    /// Propagates the error conditions of [`mean`], [`geometric_mean`] and
    /// [`stddev`] (empty input, non-finite input, non-positive values).
    pub fn of(values: &[f64]) -> Result<Self> {
        let mean = mean(values)?;
        let gmean = geometric_mean(values)?;
        let stddev = stddev(values)?;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            count: values.len(),
            mean,
            gmean,
            stddev,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_single_value_is_that_value() {
        assert_eq!(mean(&[7.5]).unwrap(), 7.5);
    }

    #[test]
    fn mean_rejects_empty() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn mean_rejects_nan() {
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NonFinite));
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_rejects_zero_and_negative() {
        assert!(matches!(
            geometric_mean(&[1.0, 0.0]),
            Err(StatsError::Domain(_))
        ));
        assert!(matches!(
            geometric_mean(&[-1.0]),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn gmean_is_at_most_arithmetic_mean() {
        // AM-GM inequality on an arbitrary positive sample.
        let xs = [0.5, 1.9, 3.3, 0.7, 2.2];
        assert!(geometric_mean(&xs).unwrap() <= mean(&xs).unwrap() + 1e-12);
    }

    #[test]
    fn variance_of_constant_series_is_zero() {
        assert_eq!(variance(&[2.0, 2.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn stddev_matches_known_value() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9 — classic example with sigma = 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 40.0);
        assert!((percentile(&xs, 50.0).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_out_of_range_p() {
        assert!(matches!(
            percentile(&[1.0], 101.0),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn normalize_divides_by_baseline() {
        let out = normalize_to(&[2.0, 4.0], 2.0).unwrap();
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn normalize_rejects_zero_baseline() {
        assert!(matches!(
            normalize_to(&[1.0], 0.0),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn summary_orders_min_max() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
    }
}
