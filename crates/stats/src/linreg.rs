use crate::error::{ensure_finite, StatsError};
use crate::Result;

/// Ordinary least-squares linear fit `y = intercept + slope·x`.
///
/// The Litmus discount model (paper §6, step 3 and Fig. 9) is built from
/// exactly this: for each traffic generator, the slowdown of the language
/// startup phase (x) is regressed against the geometric-mean slowdown of
/// the reference functions (y), separately for `T_private`, `T_shared`
/// and total time. The paper reports R² between 0.836 and 0.989 for these
/// fits, so [`LinearFit::r_squared`] is part of the public API.
///
/// # Examples
///
/// ```
/// use litmus_stats::LinearFit;
///
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [2.0, 4.0, 6.0];
/// let fit = LinearFit::fit(&xs, &ys).unwrap();
/// assert!((fit.slope() - 2.0).abs() < 1e-12);
/// assert!((fit.predict(4.0) - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    slope: f64,
    intercept: f64,
    r_squared: f64,
    n: usize,
}

impl LinearFit {
    /// Fits `y = intercept + slope·x` by least squares.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] if `xs` and `ys` differ in length.
    /// * [`StatsError::InsufficientSamples`] with fewer than 2 points.
    /// * [`StatsError::NonFinite`] if any coordinate is NaN or infinite.
    /// * [`StatsError::DegenerateX`] if all `xs` are identical.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(StatsError::InsufficientSamples {
                got: xs.len(),
                need: 2,
            });
        }
        ensure_finite(xs)?;
        ensure_finite(ys)?;

        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return Err(StatsError::DegenerateX);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // R² = 1 - SS_res / SS_tot. A constant y series fits perfectly
        // with slope 0, so define R² = 1 when syy == 0.
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            let ss_res: f64 = xs
                .iter()
                .zip(ys)
                .map(|(&x, &y)| {
                    let e = y - (intercept + slope * x);
                    e * e
                })
                .sum();
            1.0 - ss_res / syy
        };
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
            n: xs.len(),
        })
    }

    /// Fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficient of determination of the fit, in `[0, 1]` for OLS.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of points the model was fitted on.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the fit was built from zero points (never true: fitting
    /// requires at least two points, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Inverts the fitted line: the `x` that predicts `y`.
    ///
    /// Used when converting an observed startup slowdown back into an
    /// abstract congestion level.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DegenerateX`] if the slope is zero (a flat
    /// line cannot be inverted).
    pub fn invert(&self, y: f64) -> Result<f64> {
        if self.slope == 0.0 {
            return Err(StatsError::DegenerateX);
        }
        Ok((y - self.intercept) / self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_parameters() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.5 * x).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope() - 0.5).abs() < 1e-12);
        assert!((fit.intercept() - 3.0).abs() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
        assert_eq!(fit.len(), 10);
        assert!(!fit.is_empty());
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r2() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        // Deterministic "noise" via alternating offsets.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 2.0 * x + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!(fit.r_squared() > 0.99);
        assert!(fit.r_squared() < 1.0);
        assert!((fit.slope() - 2.0).abs() < 0.05);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { xs: 1, ys: 2 })
        );
    }

    #[test]
    fn single_point_is_insufficient() {
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0]),
            Err(StatsError::InsufficientSamples { got: 1, need: 2 })
        );
    }

    #[test]
    fn constant_x_is_degenerate() {
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::DegenerateX)
        );
    }

    #[test]
    fn constant_y_fits_flat_line_with_perfect_r2() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope(), 0.0);
        assert_eq!(fit.intercept(), 5.0);
        assert_eq!(fit.r_squared(), 1.0);
    }

    #[test]
    fn invert_round_trips() {
        let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
        let x = fit.invert(4.0).unwrap();
        assert!((fit.predict(x) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn invert_flat_line_errors() {
        let fit = LinearFit::fit(&[1.0, 2.0], &[5.0, 5.0]).unwrap();
        assert_eq!(fit.invert(5.0), Err(StatsError::DegenerateX));
    }

    #[test]
    fn rejects_nan_inputs() {
        assert_eq!(
            LinearFit::fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFinite)
        );
    }
}
