use crate::error::StatsError;
use crate::logreg::LogFit;
use crate::Result;

/// Linear interpolation between `a` and `b` by weight `t` (not clamped).
///
/// # Examples
///
/// ```
/// assert_eq!(litmus_stats::lerp(1.0, 3.0, 0.5), 2.0);
/// ```
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Computes the logarithmic position of `value` between `lo` and `hi`,
/// clamped to `[0, 1]`.
///
/// This is step ③ of paper Fig. 10: a Litmus test reporting 100 L3 misses
/// when CT-Gen would produce 10 and MB-Gen 1000 lies exactly midway in
/// log space, so the weight is 0.5.
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if any argument is non-positive or if
/// `lo == hi` (the bracket is degenerate).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), litmus_stats::StatsError> {
/// let w = litmus_stats::log_weight(100.0, 10.0, 1000.0)?;
/// assert!((w - 0.5).abs() < 1e-12);
/// # Ok(()) }
/// ```
pub fn log_weight(value: f64, lo: f64, hi: f64) -> Result<f64> {
    if value <= 0.0 || lo <= 0.0 || hi <= 0.0 {
        return Err(StatsError::Domain(
            "logarithmic weight requires strictly positive inputs",
        ));
    }
    if lo == hi {
        return Err(StatsError::Domain(
            "logarithmic weight bracket is degenerate (lo == hi)",
        ));
    }
    let w = (value.ln() - lo.ln()) / (hi.ln() - lo.ln());
    Ok(w.clamp(0.0, 1.0))
}

/// Blends two estimates by the logarithmic position of `value` in
/// `[lo, hi]` — the complete Fig. 10 interpolation in one call.
///
/// `estimate_lo` is returned when `value <= lo`, `estimate_hi` when
/// `value >= hi`, and a linear blend (in the estimate domain, weighted in
/// log space of `value`) in between.
///
/// # Errors
///
/// Same conditions as [`log_weight`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), litmus_stats::StatsError> {
/// // Discount 1% at CT-Gen-like 10 misses, 6% at MB-Gen-like 1000.
/// let d = litmus_stats::log_blend(100.0, 10.0, 1000.0, 0.01, 0.06)?;
/// assert!((d - 0.035).abs() < 1e-12); // the paper's 3.5% example
/// # Ok(()) }
/// ```
pub fn log_blend(value: f64, lo: f64, hi: f64, estimate_lo: f64, estimate_hi: f64) -> Result<f64> {
    let w = log_weight(value, lo, hi)?;
    Ok(lerp(estimate_lo, estimate_hi, w))
}

/// Interpolator between two logarithmic curves indexed by the same x.
///
/// Holds the two per-generator [`LogFit`] models (CT-Gen and MB-Gen
/// L3-miss curves in the paper) and answers "given an observed x
/// (startup slowdown) and an observed y (L3 misses), where between the
/// two curves does the machine sit?".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogInterpolator {
    lower: LogFit,
    upper: LogFit,
}

impl LogInterpolator {
    /// Creates an interpolator from the lower-bound and upper-bound curve
    /// fits (CT-Gen and MB-Gen in the paper; order matters only for which
    /// weight endpoint each maps to: `lower → 0`, `upper → 1`).
    pub fn new(lower: LogFit, upper: LogFit) -> Self {
        LogInterpolator { lower, upper }
    }

    /// Lower-bound curve.
    pub fn lower(&self) -> &LogFit {
        &self.lower
    }

    /// Upper-bound curve.
    pub fn upper(&self) -> &LogFit {
        &self.upper
    }

    /// Weight in `[0, 1]` of an observation: `x` is the common index
    /// (startup slowdown), `y` the observed metric (L3 misses).
    ///
    /// Both curves are evaluated at `x` to obtain the bracketing values,
    /// then [`log_weight`] places `y` between them.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `x` or `y` or either curve
    /// prediction is non-positive, or if the curves coincide at `x`.
    pub fn weight(&self, x: f64, y: f64) -> Result<f64> {
        if x <= 0.0 {
            return Err(StatsError::Domain("index x must be strictly positive"));
        }
        let lo = self.lower.predict(x);
        let hi = self.upper.predict(x);
        if lo <= 0.0 || hi <= 0.0 {
            return Err(StatsError::Domain(
                "curve predictions must be strictly positive for log weighting",
            ));
        }
        // The curves may cross; orient the bracket before weighting.
        if lo <= hi {
            log_weight(y, lo, hi)
        } else {
            Ok(1.0 - log_weight(y, hi, lo)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f64)]) -> LogFit {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        LogFit::fit(&xs, &ys).unwrap()
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 6.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 6.0, 1.0), 6.0);
        assert_eq!(lerp(2.0, 6.0, 0.25), 3.0);
    }

    #[test]
    fn log_weight_clamps_out_of_bracket_values() {
        assert_eq!(log_weight(1.0, 10.0, 1000.0).unwrap(), 0.0);
        assert_eq!(log_weight(1e6, 10.0, 1000.0).unwrap(), 1.0);
    }

    #[test]
    fn log_weight_rejects_degenerate_bracket() {
        assert!(matches!(
            log_weight(5.0, 10.0, 10.0),
            Err(StatsError::Domain(_))
        ));
    }

    #[test]
    fn paper_fig10_walkthrough() {
        // 10 misses → CT-like (1% discount); 1000 → MB-like (6%);
        // 100 → midway in log space → 3.5%.
        let d1 = log_blend(10.0, 10.0, 1000.0, 0.01, 0.06).unwrap();
        let d2 = log_blend(1000.0, 10.0, 1000.0, 0.01, 0.06).unwrap();
        let d3 = log_blend(100.0, 10.0, 1000.0, 0.01, 0.06).unwrap();
        assert!((d1 - 0.01).abs() < 1e-12);
        assert!((d2 - 0.06).abs() < 1e-12);
        assert!((d3 - 0.035).abs() < 1e-12);
    }

    #[test]
    fn interpolator_weights_between_curves() {
        // Lower curve: y = 10·x^0 = e^(ln 10); make it depend on x mildly.
        let lower = curve(&[(1.0, 2.0), (2.0, 2.5), (4.0, 3.0)]);
        let upper = curve(&[(1.0, 200.0), (2.0, 250.0), (4.0, 300.0)]);
        let interp = LogInterpolator::new(lower, upper);
        let w_lo = interp.weight(2.0, 2.5).unwrap();
        let w_hi = interp.weight(2.0, 250.0).unwrap();
        assert!(w_lo < 0.05);
        assert!(w_hi > 0.95);
        let w_mid = interp.weight(2.0, 25.0).unwrap();
        assert!(w_mid > 0.3 && w_mid < 0.7);
    }

    #[test]
    fn interpolator_handles_swapped_curves() {
        let a = curve(&[(1.0, 2.0), (2.0, 2.5), (4.0, 3.0)]);
        let b = curve(&[(1.0, 200.0), (2.0, 250.0), (4.0, 300.0)]);
        let normal = LogInterpolator::new(a, b);
        let swapped = LogInterpolator::new(b, a);
        let w1 = normal.weight(2.0, 25.0).unwrap();
        let w2 = swapped.weight(2.0, 25.0).unwrap();
        assert!((w1 + w2 - 1.0).abs() < 1e-9, "weights must mirror");
    }
}
