use std::error::Error;
use std::fmt;

/// Errors produced by the statistics substrate.
///
/// Every fallible public function in this crate returns this type, so that
/// downstream crates can propagate numerical failures (empty inputs,
/// degenerate regressions, domain violations) with `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty where at least one element is required.
    EmptyInput,
    /// Paired-sample input slices had different lengths.
    LengthMismatch {
        /// Length of the x (first) slice.
        xs: usize,
        /// Length of the y (second) slice.
        ys: usize,
    },
    /// Fewer samples than required for the requested operation.
    InsufficientSamples {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// The x values were all identical, so a slope cannot be determined.
    DegenerateX,
    /// A value outside the mathematical domain was supplied
    /// (e.g. non-positive input to a logarithm or geometric mean).
    Domain(&'static str),
    /// A non-finite (NaN or infinite) value was encountered in the input.
    NonFinite,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input slice is empty"),
            StatsError::LengthMismatch { xs, ys } => {
                write!(f, "paired inputs have different lengths ({xs} vs {ys})")
            }
            StatsError::InsufficientSamples { got, need } => {
                write!(f, "need at least {need} samples, got {got}")
            }
            StatsError::DegenerateX => {
                write!(f, "x values are constant; slope is undefined")
            }
            StatsError::Domain(what) => write!(f, "domain error: {what}"),
            StatsError::NonFinite => write!(f, "input contains NaN or infinity"),
        }
    }
}

impl Error for StatsError {}

/// Validates that a slice contains only finite values.
pub(crate) fn ensure_finite(values: &[f64]) -> super::Result<()> {
    if values.iter().any(|v| !v.is_finite()) {
        Err(StatsError::NonFinite)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(StatsError, &str)> = vec![
            (StatsError::EmptyInput, "empty"),
            (StatsError::LengthMismatch { xs: 3, ys: 4 }, "3 vs 4"),
            (
                StatsError::InsufficientSamples { got: 1, need: 2 },
                "at least 2",
            ),
            (StatsError::DegenerateX, "slope"),
            (StatsError::Domain("log of zero"), "log of zero"),
            (StatsError::NonFinite, "NaN"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
    }

    #[test]
    fn ensure_finite_accepts_normal_values() {
        assert!(ensure_finite(&[0.0, -1.5, 3.25]).is_ok());
    }

    #[test]
    fn ensure_finite_rejects_nan_and_inf() {
        assert_eq!(ensure_finite(&[1.0, f64::NAN]), Err(StatsError::NonFinite));
        assert_eq!(ensure_finite(&[f64::INFINITY]), Err(StatsError::NonFinite));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(StatsError::EmptyInput);
    }
}
