//! Scratch calibration harness: prints the aggregates the paper reports
//! so the model constants can be tuned (Figs. 2, 3, 4 and probe
//! sensitivity). Not part of the public deliverables — kept as a
//! maintenance tool.

use std::collections::HashMap;

use litmus_sim::{InstanceId, MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, Language, TrafficGenerator, WorkloadMix};

fn main() {
    solo_landscape();
    corun_landscape();
    probe_sensitivity();
}

/// Fig. 4: solo T_private / T_shared distribution.
fn solo_landscape() {
    println!("=== solo landscape (Fig. 4) ===");
    let mut fracs = Vec::new();
    for b in suite::benchmarks() {
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let id = sim.launch(b.profile(), Placement::pinned(0)).unwrap();
        let r = sim.run_to_completion(id).unwrap();
        let frac = r.counters.t_shared_cycles() / r.counters.cycles;
        fracs.push(frac);
        println!(
            "{:14} wall {:7.1} ms  shared {:5.1}%  ipc {:.2}",
            b.name(),
            r.wall_ms(),
            frac * 100.0,
            r.counters.ipc()
        );
    }
    let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
    println!("mean shared fraction: {:.1}%\n", mean * 100.0);
}

/// Figs. 2/3: slowdown with 26 co-runners, one function per core.
fn corun_landscape() {
    println!("=== co-run with 26 others (Figs. 2/3) ===");
    let mut slowdowns = Vec::new();
    let mut priv_slow = Vec::new();
    let mut shared_slow = Vec::new();
    for b in suite::benchmarks() {
        // Solo baseline.
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let id = sim.launch(b.profile(), Placement::pinned(0)).unwrap();
        let solo = sim.run_to_completion(id).unwrap();

        // Congested run: 26 co-runners on cores 1..=26, backfilled.
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let mut mix = WorkloadMix::new(suite::benchmarks(), 42).unwrap();
        let mut core_of: HashMap<InstanceId, usize> = HashMap::new();
        for core in 1..=26 {
            let cid = sim
                .launch(mix.next_profile(), Placement::pinned(core))
                .unwrap();
            core_of.insert(cid, core);
        }
        // Warm up 200 ms with backfill.
        for _ in 0..200 {
            for event in sim.step() {
                let litmus_sim::Event::Completed { id, .. } = event;
                if let Some(core) = core_of.remove(&id) {
                    let cid = sim
                        .launch(mix.next_profile(), Placement::pinned(core))
                        .unwrap();
                    core_of.insert(cid, core);
                }
            }
        }
        let tid = sim.launch(b.profile(), Placement::pinned(0)).unwrap();
        loop {
            let events = sim.step();
            let mut done = false;
            for event in events {
                let litmus_sim::Event::Completed { id, .. } = event;
                if id == tid {
                    done = true;
                } else if let Some(core) = core_of.remove(&id) {
                    let cid = sim
                        .launch(mix.next_profile(), Placement::pinned(core))
                        .unwrap();
                    core_of.insert(cid, core);
                }
            }
            if done {
                break;
            }
        }
        let cong = sim.report(tid).unwrap();
        let slow = cong.wall_ms() / solo.wall_ms();
        let ps =
            cong.counters.t_private_per_instruction() / solo.counters.t_private_per_instruction();
        let ss =
            cong.counters.t_shared_per_instruction() / solo.counters.t_shared_per_instruction();
        slowdowns.push(slow);
        priv_slow.push(ps);
        shared_slow.push(ss);
        println!(
            "{:14} slowdown {:5.3}  Tpriv {:5.3}  Tshared {:5.3}",
            b.name(),
            slow,
            ps,
            ss
        );
    }
    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "gmean slowdown {:.3} (paper ~1.115), Tpriv {:.3} (paper ~1.04), Tshared {:.3} (paper ~2.81)\n",
        gmean(&slowdowns),
        gmean(&priv_slow),
        gmean(&shared_slow)
    );
}

/// Probe sensitivity: Python startup slowdown + machine L3 misses under
/// each generator at several levels (congestion-table raw material).
fn probe_sensitivity() {
    println!("=== python startup probe vs generators ===");
    // Solo startup baseline.
    let probe = suite::by_name("fib-py")
        .unwrap()
        .profile()
        .startup_only()
        .unwrap();
    let mut sim = Simulator::new(MachineSpec::cascade_lake());
    let id = sim.launch(probe.clone(), Placement::pinned(0)).unwrap();
    let solo = sim.run_to_completion(id).unwrap();
    let solo_priv = solo.counters.t_private_per_instruction();
    let solo_shared = solo.counters.t_shared_per_instruction();
    println!(
        "solo: wall {:.1} ms ipc {:.2} shared-frac {:.2}",
        solo.wall_ms(),
        solo.counters.ipc(),
        solo.counters.t_shared_cycles() / solo.counters.cycles
    );
    for gen in TrafficGenerator::ALL {
        for level in [4usize, 8, 14, 22, 31] {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            for core in 1..=level {
                sim.launch(gen.thread_profile(100_000.0), Placement::pinned(core))
                    .unwrap();
            }
            sim.run_for_ms(5);
            let id = sim.launch(probe.clone(), Placement::pinned(0)).unwrap();
            let r = sim.run_to_completion(id).unwrap();
            let startup = r.startup.unwrap();
            println!(
                "{} level {:2}: Tpriv x{:.3} Tshared x{:.3} L3/ms {:>10.0}",
                gen,
                level,
                startup.counters.t_private_per_instruction() / solo_priv,
                startup.counters.t_shared_per_instruction() / solo_shared,
                startup.machine_l3_miss_rate
            );
        }
    }
    let _ = Language::ALL;
}
