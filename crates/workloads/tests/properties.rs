//! Property-based tests on workload-model invariants.

use litmus_sim::{MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, Language, TrafficGenerator, WorkloadMix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Profiles stay valid under arbitrary scaling, preserving the
    /// startup/body split and scaling instruction counts exactly.
    #[test]
    fn profiles_scale_cleanly(
        idx in 0usize..27,
        scale in 0.01f64..10.0,
    ) {
        let bench = &suite::benchmarks()[idx];
        let profile = bench.profile();
        let scaled = profile.scaled(scale).unwrap();
        prop_assert_eq!(scaled.startup_len(), profile.startup_len());
        prop_assert!(
            (scaled.total_instructions() - profile.total_instructions() * scale)
                .abs()
                < 1.0
        );
        prop_assert!(
            (scaled.startup_instructions()
                - profile.startup_instructions() * scale)
                .abs()
                < 1.0
        );
    }

    /// Every benchmark runs to completion solo on every machine preset.
    #[test]
    fn benchmarks_complete_on_all_presets(idx in 0usize..27) {
        let bench = &suite::benchmarks()[idx];
        for spec in [
            MachineSpec::cascade_lake(),
            MachineSpec::cascade_lake_dual(),
            MachineSpec::ice_lake(),
        ] {
            let mut sim = Simulator::new(spec);
            let profile = bench.profile().scaled(0.02).unwrap();
            let id = sim.launch(profile, Placement::pinned(0)).unwrap();
            let report = sim.run_to_completion(id).unwrap();
            prop_assert!(report.counters.cycles > 0.0);
            prop_assert!(report.startup.is_some());
        }
    }

    /// The mix draws roughly uniformly: over many draws, every
    /// benchmark appears, and no benchmark dominates.
    #[test]
    fn mix_is_roughly_uniform(seed in 0u64..1000) {
        let mut mix = WorkloadMix::new(suite::benchmarks(), seed).unwrap();
        let mut counts = std::collections::HashMap::new();
        let draws = 27 * 40;
        for _ in 0..draws {
            *counts.entry(mix.next_benchmark().name()).or_insert(0usize) += 1;
        }
        prop_assert!(counts.len() >= 25, "draws cover the pool");
        let max = counts.values().max().copied().unwrap();
        prop_assert!(
            max < draws / 8,
            "no benchmark may dominate a uniform mix (max {max})"
        );
    }

    /// Generator thread profiles scale linearly with duration and keep
    /// their defining character at any duration.
    #[test]
    fn generator_profiles_scale(duration in 1.0f64..1.0e6) {
        for gen in TrafficGenerator::ALL {
            let one = gen.thread_profile(1.0);
            let many = gen.thread_profile(duration);
            let ratio =
                many.total_instructions() / one.total_instructions();
            prop_assert!((ratio - duration).abs() < 1e-6 * duration.max(1.0));
            let phase = many.phases()[0];
            match gen {
                TrafficGenerator::CtGen => {
                    prop_assert!(phase.l3_miss_ratio < 0.1)
                }
                TrafficGenerator::MbGen => {
                    prop_assert!(phase.l3_miss_ratio > 0.7)
                }
            }
        }
    }
}

#[test]
fn startup_prefixes_are_shared_within_a_language() {
    // Every same-language pair shares an identical startup prefix —
    // the property Litmus tests fundamentally rely on (Fig. 6).
    for lang in Language::ALL {
        let benches: Vec<_> = suite::benchmarks()
            .into_iter()
            .filter(|b| b.language() == lang)
            .collect();
        let first = benches[0].profile();
        let prefix = &first.phases()[..first.startup_len()];
        for bench in &benches[1..] {
            let profile = bench.profile();
            assert_eq!(
                &profile.phases()[..profile.startup_len()],
                prefix,
                "{} must share {lang}'s startup",
                bench.name()
            );
        }
    }
}
