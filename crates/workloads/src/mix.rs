use litmus_sim::ExecutionProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::benchmark::Benchmark;

/// Randomised co-runner source implementing the paper's §4/§7.1
/// protocol: "whenever a function finishes, a new randomly-selected
/// function is launched to maintain a total of N co-running functions".
///
/// Deterministic for a given seed, so every experiment in this
/// repository is exactly reproducible.
///
/// # Examples
///
/// ```
/// use litmus_workloads::{suite, WorkloadMix};
///
/// let mut mix = WorkloadMix::new(suite::benchmarks(), 42).unwrap();
/// let first = mix.next_profile();
/// let mut again = WorkloadMix::new(suite::benchmarks(), 42).unwrap();
/// assert_eq!(first.name(), again.next_profile().name());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    pool: Vec<Benchmark>,
    rng: StdRng,
    scale: f64,
}

impl WorkloadMix {
    /// Creates a mix drawing uniformly from `pool` with a fixed seed.
    ///
    /// Returns `None` when `pool` is empty.
    pub fn new(pool: Vec<Benchmark>, seed: u64) -> Option<Self> {
        if pool.is_empty() {
            return None;
        }
        Some(WorkloadMix {
            pool,
            rng: StdRng::seed_from_u64(seed),
            scale: 1.0,
        })
    }

    /// Scales every drawn profile's instruction counts by `scale` —
    /// used to shrink experiments in tests without changing any
    /// per-instruction behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite number.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite"
        );
        self.scale = scale;
        self
    }

    /// The benchmarks this mix draws from.
    pub fn pool(&self) -> &[Benchmark] {
        &self.pool
    }

    /// Draws the next random benchmark.
    pub fn next_benchmark(&mut self) -> &Benchmark {
        let idx = self.rng.gen_range(0..self.pool.len());
        &self.pool[idx]
    }

    /// Draws the next random benchmark and builds its profile, applying
    /// the configured scale.
    pub fn next_profile(&mut self) -> ExecutionProfile {
        let scale = self.scale;
        let profile = self.next_benchmark().profile();
        if scale == 1.0 {
            profile
        } else {
            profile
                .scaled(scale)
                .expect("scale validated in with_scale") // lint:allow(panic-in-lib): with_scale rejected non-finite scale before storing it
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn empty_pool_is_rejected() {
        assert!(WorkloadMix::new(Vec::new(), 1).is_none());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WorkloadMix::new(suite::benchmarks(), 7).unwrap();
        let mut b = WorkloadMix::new(suite::benchmarks(), 7).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_benchmark().name(), b.next_benchmark().name());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WorkloadMix::new(suite::benchmarks(), 1).unwrap();
        let mut b = WorkloadMix::new(suite::benchmarks(), 2).unwrap();
        let same = (0..50)
            .filter(|_| a.next_benchmark().name() == b.next_benchmark().name())
            .count();
        assert!(same < 50, "sequences must differ");
    }

    #[test]
    fn draws_cover_the_pool() {
        let mut mix = WorkloadMix::new(suite::benchmarks(), 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(mix.next_benchmark().name());
        }
        assert!(
            seen.len() > 20,
            "1000 draws should cover most of 27 benchmarks, saw {}",
            seen.len()
        );
    }
}
