//! The paper's Table 1: 27 serverless benchmarks with per-function
//! calibrated body models.
//!
//! The `*`-marked functions are the provider-side **reference set** used
//! to build performance tables (§6 step 2); the remaining 14 are the
//! tenant functions priced in the evaluation (Figs. 11–21).

use crate::benchmark::{Benchmark, SuiteOrigin};
use crate::language::Language;

use Language::{Go, NodeJs, Python};
use SuiteOrigin::{FunctionBench, HotelReservation, OnlineBoutique, Other, SeBs};

/// All 27 benchmarks, in paper Table-1 order.
///
/// Body parameters are `(body_ms, ipc, l2_mpki, l3_ratio, blocking,
/// footprint_mb)` and encode each function's character:
///
/// * graph analytics (`pager-py`, `mst-py`, `bfs-py`) — irregular
///   pointer-chasing: highest MPKI, large footprints, deep blocking;
/// * `float-py` — pure arithmetic, ≈99.9% `T_private` (the paper's
///   canonical discount-without-slowdown example);
/// * disk benchmarks (`randDisk-py`, `seqDisk-py`) — modelled as memory
///   streaming: random I/O blocks on every access (high blocking),
///   sequential I/O prefetches (low blocking);
/// * `fib-nj` — the paper's example of a *memory-leaning* runtime body
///   (Fig. 4 shows its `T_shared` share among the largest);
/// * authentication and boutique handlers — short, light functions.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        // --- SeBS (Python) ---
        Benchmark::new(
            "dyn-py", "Dyn HTML", Python, SeBs, false, 260.0, 1.00, 0.65, 0.45, 0.85, 26.0,
        ),
        Benchmark::new(
            "thum-py",
            "Thumbnail",
            Python,
            SeBs,
            true,
            300.0,
            1.10,
            0.50,
            0.40,
            0.80,
            30.0,
        ),
        Benchmark::new(
            "compre-py",
            "Compression",
            Python,
            SeBs,
            false,
            340.0,
            1.05,
            0.55,
            0.50,
            0.70,
            20.0,
        ),
        Benchmark::new(
            "recogn-py",
            "Image Recogn",
            Python,
            SeBs,
            false,
            640.0,
            0.90,
            0.42,
            0.45,
            0.80,
            60.0,
        ),
        Benchmark::new(
            "pager-py",
            "Graph Rank",
            Python,
            SeBs,
            false,
            520.0,
            0.85,
            1.05,
            0.50,
            0.90,
            80.0,
        ),
        Benchmark::new(
            "mst-py",
            "Graph Mst",
            Python,
            SeBs,
            false,
            430.0,
            0.90,
            0.90,
            0.50,
            0.90,
            60.0,
        ),
        Benchmark::new(
            "bfs-py",
            "Graph Bfs",
            Python,
            SeBs,
            true,
            380.0,
            0.90,
            1.00,
            0.55,
            0.90,
            70.0,
        ),
        Benchmark::new(
            "visual-py",
            "DNA Visual",
            Python,
            SeBs,
            true,
            420.0,
            1.10,
            0.38,
            0.35,
            0.80,
            25.0,
        ),
        // --- FunctionBench (Python) ---
        Benchmark::new(
            "chame-py",
            "Chameleon",
            Python,
            FunctionBench,
            false,
            280.0,
            1.20,
            0.30,
            0.30,
            0.80,
            15.0,
        ),
        Benchmark::new(
            "float-py",
            "FloatOp",
            Python,
            FunctionBench,
            false,
            700.0,
            2.20,
            0.012,
            0.05,
            0.60,
            2.0,
        ),
        Benchmark::new(
            "gzip-py",
            "Gzip",
            Python,
            FunctionBench,
            true,
            300.0,
            1.00,
            0.52,
            0.55,
            0.65,
            18.0,
        ),
        Benchmark::new(
            "randDisk-py",
            "RandDisk",
            Python,
            FunctionBench,
            true,
            360.0,
            0.80,
            1.10,
            0.70,
            0.95,
            90.0,
        ),
        Benchmark::new(
            "seqDisk-py",
            "SequenDisk",
            Python,
            FunctionBench,
            false,
            330.0,
            1.20,
            0.80,
            0.75,
            0.35,
            40.0,
        ),
        // --- Online Boutique (Node.js) ---
        Benchmark::new(
            "cur-nj",
            "Currency",
            NodeJs,
            OnlineBoutique,
            true,
            420.0,
            1.10,
            0.38,
            0.30,
            0.80,
            14.0,
        ),
        Benchmark::new(
            "pay-nj",
            "Payment",
            NodeJs,
            OnlineBoutique,
            false,
            450.0,
            1.15,
            0.33,
            0.30,
            0.80,
            14.0,
        ),
        // --- Hotel Reservation (Go) ---
        Benchmark::new(
            "geo-go",
            "Geo",
            Go,
            HotelReservation,
            false,
            260.0,
            1.30,
            0.45,
            0.40,
            0.80,
            30.0,
        ),
        Benchmark::new(
            "profile-go",
            "Profile",
            Go,
            HotelReservation,
            true,
            300.0,
            1.40,
            0.33,
            0.35,
            0.80,
            22.0,
        ),
        Benchmark::new(
            "rate-go",
            "Rate",
            Go,
            HotelReservation,
            false,
            280.0,
            1.35,
            0.42,
            0.45,
            0.80,
            25.0,
        ),
        // --- Other: AWS authentication, Fibonacci, AES (×3 languages) ---
        Benchmark::new(
            "auth-py", "Authen", Python, Other, true, 190.0, 1.40, 0.16, 0.25, 0.75, 6.0,
        ),
        Benchmark::new(
            "auth-nj", "Authen", NodeJs, Other, false, 400.0, 1.25, 0.24, 0.25, 0.80, 12.0,
        ),
        Benchmark::new(
            "auth-go", "Authen", Go, Other, false, 150.0, 1.80, 0.14, 0.20, 0.75, 6.0,
        ),
        Benchmark::new(
            "fib-py",
            "Fibonacci",
            Python,
            Other,
            true,
            260.0,
            1.90,
            0.10,
            0.10,
            0.70,
            4.0,
        ),
        Benchmark::new(
            "fib-nj",
            "Fibonacci",
            NodeJs,
            Other,
            true,
            480.0,
            1.00,
            1.15,
            0.30,
            0.80,
            20.0,
        ),
        Benchmark::new(
            "fib-go",
            "Fibonacci",
            Go,
            Other,
            true,
            200.0,
            2.50,
            0.06,
            0.10,
            0.70,
            3.0,
        ),
        Benchmark::new(
            "aes-py", "AES", Python, Other, false, 250.0, 1.30, 0.24, 0.20, 0.75, 10.0,
        ),
        Benchmark::new(
            "aes-nj", "AES", NodeJs, Other, true, 430.0, 1.10, 0.40, 0.25, 0.80, 15.0,
        ),
        Benchmark::new(
            "aes-go", "AES", Go, Other, true, 190.0, 1.70, 0.20, 0.20, 0.75, 8.0,
        ),
    ]
}

/// The 13 `*`-marked reference functions the provider profiles offline.
pub fn reference_benchmarks() -> Vec<Benchmark> {
    benchmarks()
        .into_iter()
        .filter(|b| b.is_reference())
        .collect()
}

/// The 14 tenant functions priced in the evaluation figures.
pub fn test_benchmarks() -> Vec<Benchmark> {
    benchmarks()
        .into_iter()
        .filter(|b| !b.is_reference())
        .collect()
}

/// The eight memory-intensive functions §8 "Heavy Congestion" selects to
/// deliberately congest shared resources in the 320-function experiment.
pub fn heavy_congestion_picks() -> Vec<Benchmark> {
    const PICKS: [&str; 8] = [
        "aes-py",
        "compre-py",
        "thum-py",
        "bfs-py",
        "auth-py",
        "fib-go",
        "geo-go",
        "profile-go",
    ];
    benchmarks()
        .into_iter()
        .filter(|b| PICKS.contains(&b.name()))
        .collect()
}

/// Looks a benchmark up by its Table-1 abbreviation.
pub fn by_name(name: &str) -> Option<Benchmark> {
    benchmarks().into_iter().find(|b| b.name() == name)
}

/// Tenant archetypes for multi-tenant traffic synthesis: each maps to a
/// workload pool with a distinct resource character, so mixing classes
/// on one cluster reproduces the heterogeneous pressure a public
/// serverless platform sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TenantClass {
    /// Latency-sensitive request handlers: short, cache-light functions
    /// (auth, payments, lookups) — mostly `T_private`.
    Interactive,
    /// Data/graph analytics: irregular, memory-leaning functions with
    /// big footprints — the heaviest `T_shared` pressure.
    Analytics,
    /// Throughput batch jobs: long compute-dominated bodies
    /// (compression, encoding, arithmetic).
    Batch,
}

impl TenantClass {
    /// All classes, in enum order.
    pub const ALL: [TenantClass; 3] = [
        TenantClass::Interactive,
        TenantClass::Analytics,
        TenantClass::Batch,
    ];

    /// Memory at or above this marks a function as [`Analytics`]
    /// (big-footprint, memory-leaning work).
    ///
    /// [`Analytics`]: TenantClass::Analytics
    pub const ANALYTICS_MEMORY_MB: f64 = 170.0;

    /// Mean duration at or below this (for non-analytics functions)
    /// marks a function as [`Interactive`]; anything longer is
    /// [`Batch`].
    ///
    /// [`Interactive`]: TenantClass::Interactive
    /// [`Batch`]: TenantClass::Batch
    pub const INTERACTIVE_DURATION_MS: f64 = 1_000.0;

    /// Classifies an externally-observed function (e.g. one row of the
    /// Azure Functions trace) into the tenant archetype whose workload
    /// pool best matches its resource character:
    ///
    /// * big allocated memory → [`TenantClass::Analytics`] (the
    ///   memory-leaning pool, heaviest `T_shared` pressure);
    /// * otherwise, short mean duration → [`TenantClass::Interactive`];
    /// * otherwise → [`TenantClass::Batch`].
    ///
    /// Non-finite inputs are treated as unknown (zero), which lands in
    /// the short-and-light [`TenantClass::Interactive`] bucket.
    pub fn classify(mean_duration_ms: f64, mean_memory_mb: f64) -> TenantClass {
        let duration = if mean_duration_ms.is_finite() {
            mean_duration_ms.max(0.0)
        } else {
            0.0
        };
        let memory = if mean_memory_mb.is_finite() {
            mean_memory_mb.max(0.0)
        } else {
            0.0
        };
        if memory >= Self::ANALYTICS_MEMORY_MB {
            TenantClass::Analytics
        } else if duration <= Self::INTERACTIVE_DURATION_MS {
            TenantClass::Interactive
        } else {
            TenantClass::Batch
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TenantClass::Interactive => "interactive",
            TenantClass::Analytics => "analytics",
            TenantClass::Batch => "batch",
        }
    }
}

impl std::fmt::Display for TenantClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The workload pool a [`TenantClass`] tenant invokes.
pub fn tenant_pool(class: TenantClass) -> Vec<Benchmark> {
    let picks: &[&str] = match class {
        TenantClass::Interactive => &[
            "auth-py",
            "auth-nj",
            "auth-go",
            "cur-nj",
            "pay-nj",
            "geo-go",
            "rate-go",
            "profile-go",
            "fib-py",
            "fib-go",
            "aes-go",
        ],
        TenantClass::Analytics => &[
            "pager-py",
            "mst-py",
            "bfs-py",
            "randDisk-py",
            "recogn-py",
            "seqDisk-py",
            "fib-nj",
        ],
        TenantClass::Batch => &[
            "float-py",
            "compre-py",
            "gzip-py",
            "chame-py",
            "dyn-py",
            "thum-py",
            "visual-py",
            "aes-py",
            "aes-nj",
        ],
    };
    benchmarks()
        .into_iter()
        .filter(|b| picks.contains(&b.name()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_seven_benchmarks_thirteen_references() {
        assert_eq!(benchmarks().len(), 27);
        assert_eq!(reference_benchmarks().len(), 13);
        assert_eq!(test_benchmarks().len(), 14);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = benchmarks().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn reference_set_matches_table1_stars() {
        let mut refs: Vec<_> = reference_benchmarks().iter().map(|b| b.name()).collect();
        refs.sort_unstable();
        assert_eq!(
            refs,
            vec![
                "aes-go",
                "aes-nj",
                "auth-py",
                "bfs-py",
                "cur-nj",
                "fib-go",
                "fib-nj",
                "fib-py",
                "gzip-py",
                "profile-go",
                "randDisk-py",
                "thum-py",
                "visual-py",
            ]
        );
    }

    #[test]
    fn trilingual_functions_exist_in_all_three_languages() {
        for base in ["auth", "fib", "aes"] {
            for lang in Language::ALL {
                let name = format!("{base}-{}", lang.abbr());
                assert!(by_name(&name).is_some(), "{name} missing");
            }
        }
    }

    #[test]
    fn language_split_matches_table1() {
        let all = benchmarks();
        let py = all
            .iter()
            .filter(|b| b.language() == Language::Python)
            .count();
        let nj = all
            .iter()
            .filter(|b| b.language() == Language::NodeJs)
            .count();
        let go = all.iter().filter(|b| b.language() == Language::Go).count();
        assert_eq!((py, nj, go), (16, 5, 6));
    }

    #[test]
    fn heavy_congestion_picks_are_the_papers_eight() {
        let picks = heavy_congestion_picks();
        assert_eq!(picks.len(), 8);
        assert!(picks.iter().any(|b| b.name() == "bfs-py"));
    }

    #[test]
    fn float_py_is_nearly_all_private() {
        let b = by_name("float-py").unwrap();
        assert!(
            b.solo_shared_fraction() < 0.005,
            "float-py must be ≈99.9% private, shared frac {}",
            b.solo_shared_fraction()
        );
    }

    #[test]
    fn graph_workloads_lean_hardest_on_shared_resources() {
        let avg: f64 = benchmarks()
            .iter()
            .map(|b| b.solo_shared_fraction())
            .sum::<f64>()
            / 27.0;
        for name in ["pager-py", "mst-py", "bfs-py", "randDisk-py"] {
            let b = by_name(name).unwrap();
            assert!(
                b.solo_shared_fraction() > avg * 1.5,
                "{name} must be memory-leaning"
            );
        }
        // Fleet-wide average shared share stays small — the Fig. 4
        // landscape where T_private dominates most functions.
        assert!(avg > 0.02 && avg < 0.12, "avg shared fraction {avg}");
    }

    #[test]
    fn profiles_build_for_every_benchmark() {
        for b in benchmarks() {
            let p = b.profile();
            assert!(p.has_startup());
            assert!(p.total_instructions() > p.startup_instructions());
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("nope-py").is_none());
    }

    #[test]
    fn classify_maps_resource_character_to_archetypes() {
        // Short and light → interactive.
        assert_eq!(TenantClass::classify(180.0, 96.0), TenantClass::Interactive);
        // Heavy memory wins regardless of duration.
        assert_eq!(TenantClass::classify(180.0, 512.0), TenantClass::Analytics);
        assert_eq!(
            TenantClass::classify(30_000.0, 512.0),
            TenantClass::Analytics
        );
        // Long but light → batch.
        assert_eq!(TenantClass::classify(30_000.0, 96.0), TenantClass::Batch);
        // Unknown stats degrade to the light default, never panic.
        assert_eq!(
            TenantClass::classify(f64::NAN, f64::INFINITY),
            TenantClass::Interactive
        );
        // Thresholds are inclusive on the side their doc promises.
        assert_eq!(
            TenantClass::classify(
                TenantClass::INTERACTIVE_DURATION_MS,
                TenantClass::ANALYTICS_MEMORY_MB - 1.0
            ),
            TenantClass::Interactive
        );
        assert_eq!(
            TenantClass::classify(0.0, TenantClass::ANALYTICS_MEMORY_MB),
            TenantClass::Analytics
        );
    }

    #[test]
    fn tenant_pools_partition_by_resource_character() {
        let shared_avg = |pool: &[Benchmark]| {
            pool.iter().map(|b| b.solo_shared_fraction()).sum::<f64>() / pool.len() as f64
        };
        let interactive = tenant_pool(TenantClass::Interactive);
        let analytics = tenant_pool(TenantClass::Analytics);
        let batch = tenant_pool(TenantClass::Batch);
        for pool in [&interactive, &analytics, &batch] {
            assert!(!pool.is_empty());
        }
        // Pools are disjoint and every benchmark resolves.
        let mut all: Vec<_> = interactive
            .iter()
            .chain(&analytics)
            .chain(&batch)
            .map(|b| b.name())
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "tenant pools must not overlap");
        assert_eq!(total, 27, "every Table-1 function belongs to a class");
        // Analytics is the memory-leaning class by a wide margin.
        assert!(shared_avg(&analytics) > shared_avg(&interactive) * 2.0);
        assert!(shared_avg(&analytics) > shared_avg(&batch) * 1.5);
        // Interactive bodies are the shortest on average.
        let mean_ms =
            |pool: &[Benchmark]| pool.iter().map(|b| b.body_ms()).sum::<f64>() / pool.len() as f64;
        assert!(mean_ms(&interactive) < mean_ms(&analytics));
        assert!(mean_ms(&interactive) < mean_ms(&batch));
    }
}
