use std::fmt;

use litmus_sim::ExecPhase;

/// Reference solo latencies used when shaping startup phases to a target
/// IPC: the Cascade Lake preset's uncontended L3 hit and DRAM latencies.
/// Profiles shaped against these reproduce the Fig. 6 IPC timelines when
/// run alone on the default machine.
const REF_L3_LATENCY: f64 = 42.0;
const REF_MEM_LATENCY: f64 = 210.0;
/// Instructions retired in 1 ms at the pinned 2.8 GHz and IPC 1.0.
const INSTR_PER_MS_AT_IPC1: f64 = 2.8e6;

/// Language runtime of a serverless function.
///
/// The paper uses the three dominant serverless runtimes (§2): Python
/// (58% of AWS Lambda functions), Node.js (31%) and Go. Their startup
/// routines differ wildly in length — Python ≈19 ms, Node.js ≈100 ms, Go
/// ≈6 ms in Fig. 6 — but are *fixed and repeatable* within a language,
/// which is precisely what makes them usable as congestion probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// CPython-style interpreter: long startup dominated by interpreter
    /// bring-up, module imports and bytecode compilation.
    Python,
    /// Node.js / V8: the longest startup — VM bring-up, snapshot
    /// deserialisation and module graph loading.
    NodeJs,
    /// Go: statically linked native binary with a short runtime
    /// initialisation.
    Go,
}

impl Language {
    /// All supported languages, in Table-1 order.
    pub const ALL: [Language; 3] = [Language::Python, Language::NodeJs, Language::Go];

    /// Table-1 style abbreviation (`py`, `nj`, `go`).
    pub fn abbr(&self) -> &'static str {
        match self {
            Language::Python => "py",
            Language::NodeJs => "nj",
            Language::Go => "go",
        }
    }

    /// Nominal solo startup duration in milliseconds (Fig. 6 scale).
    pub fn startup_ms(&self) -> usize {
        match self {
            Language::Python => 19,
            Language::NodeJs => 100,
            Language::Go => 6,
        }
    }

    /// The startup routine as simulator phases, one per solo millisecond.
    ///
    /// Startups are memory-heavy (loading images and libraries — §6:
    /// "bursts of memory reads") with language-specific IPC signatures;
    /// every function of a language shares the same startup, which is
    /// the property Litmus tests rely on.
    pub fn startup_phases(&self) -> Vec<ExecPhase> {
        match self {
            Language::Python => python_startup(),
            Language::NodeJs => nodejs_startup(),
            Language::Go => go_startup(),
        }
    }

    /// Total instructions in the startup routine — the Litmus probe
    /// window (§7.1 uses the first 45 M instructions of the Python
    /// startup).
    pub fn startup_instructions(&self) -> f64 {
        self.startup_phases().iter().map(|p| p.instructions).sum()
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Language::Python => "Python",
            Language::NodeJs => "Node.js",
            Language::Go => "Go",
        };
        write!(f, "{name}")
    }
}

/// Shapes a 1 ms (solo) startup phase hitting `ipc` on the reference
/// machine, with the given memory behaviour. The private CPI is solved
/// from the target: `cpi_total = 1/ipc = cpi_private + stall`, where the
/// stall term uses the reference uncontended latencies.
fn startup_phase(
    ipc: f64,
    l2_mpki: f64,
    l3_miss_ratio: f64,
    blocking: f64,
    footprint_mb: f64,
) -> ExecPhase {
    let post_l2 = REF_L3_LATENCY + l3_miss_ratio * REF_MEM_LATENCY;
    // The stall share of a startup phase is capped at 70% of its cycle
    // budget so the target IPC stays reachable: memory-heavy probe
    // phases are what make Litmus tests sensitive, but a probe that is
    // *pure* stall would leave no private signal at all.
    let budget = 0.70 / ipc;
    let stall_raw = l2_mpki / 1000.0 * blocking * post_l2;
    let (l2_mpki, stall) = if stall_raw > budget {
        (budget * 1000.0 / (blocking * post_l2), budget)
    } else {
        (l2_mpki, stall_raw)
    };
    let cpi_private = (1.0 / ipc - stall).max(0.06);
    ExecPhase::new(
        INSTR_PER_MS_AT_IPC1 * ipc,
        cpi_private,
        l2_mpki,
        l3_miss_ratio,
        blocking,
        footprint_mb,
    )
}

/// CPython bring-up: interpreter init (memory-heavy, low IPC), stdlib +
/// site imports (bursty reads), bytecode compile (compute-leaning), then
/// a short pre-execution dip. ≈19 ms, ≈45 M instructions.
fn python_startup() -> Vec<ExecPhase> {
    // (ipc, l2_mpki, l3_ratio, blocking, footprint_mb) per millisecond.
    const SHAPE: [(f64, f64, f64, f64, f64); 19] = [
        (0.70, 16.0, 0.40, 0.85, 6.0),  // interpreter image load
        (0.58, 20.0, 0.45, 0.88, 10.0), // heap + type system init
        (0.62, 18.0, 0.42, 0.85, 12.0),
        (0.85, 12.0, 0.35, 0.80, 14.0), // encodings import
        (1.30, 6.0, 0.25, 0.75, 15.0),  // marshal/compile burst
        (0.95, 10.0, 0.32, 0.80, 16.0),
        (0.66, 17.0, 0.42, 0.85, 18.0), // site-packages scan
        (0.72, 15.0, 0.40, 0.85, 19.0),
        (1.05, 8.0, 0.30, 0.78, 20.0),
        (1.15, 7.0, 0.28, 0.78, 20.0),
        (0.78, 13.0, 0.38, 0.82, 21.0), // module imports
        (0.60, 19.0, 0.44, 0.86, 22.0),
        (0.82, 12.0, 0.35, 0.82, 22.0),
        (1.25, 6.0, 0.25, 0.75, 23.0), // bytecode compile
        (0.92, 10.0, 0.30, 0.80, 23.0),
        (0.70, 15.0, 0.40, 0.84, 24.0),
        (0.88, 11.0, 0.33, 0.80, 24.0),
        (1.02, 8.0, 0.30, 0.78, 24.0),
        (0.90, 10.0, 0.32, 0.80, 24.0), // handler lookup
    ];
    SHAPE
        .iter()
        .map(|&(ipc, mpki, ratio, blocking, fp)| startup_phase(ipc, mpki, ratio, blocking, fp))
        .collect()
}

/// Node.js / V8 bring-up: ≈100 ms. Generated from a repeating module-load
/// motif (deserialise snapshot → parse → compile → link) so the IPC trace
/// shows the periodic structure visible in Fig. 6's Node.js panel.
fn nodejs_startup() -> Vec<ExecPhase> {
    let mut phases = Vec::with_capacity(100);
    // V8 snapshot + ICU load: very memory heavy first 8 ms.
    for i in 0..8 {
        let ipc = 0.55 + 0.04 * (i % 3) as f64;
        phases.push(startup_phase(ipc, 21.0, 0.45, 0.88, 8.0 + 2.0 * i as f64));
    }
    // Module-graph loading: 84 ms of a 6 ms motif.
    for i in 0..84 {
        let (ipc, mpki, ratio, blocking) = match i % 6 {
            0 => (0.65, 16.0, 0.40, 0.85), // read module
            1 => (1.35, 5.0, 0.22, 0.72),  // parse
            2 => (1.80, 3.5, 0.18, 0.70),  // compile burst
            3 => (0.90, 11.0, 0.32, 0.80), // link + relocate
            4 => (1.10, 8.0, 0.28, 0.76),
            _ => (0.75, 14.0, 0.38, 0.84), // GC + intern
        };
        let fp = (24.0 + 0.4 * i as f64).min(56.0);
        phases.push(startup_phase(ipc, mpki, ratio, blocking, fp));
    }
    // Event-loop warmup: last 8 ms, compute-leaning.
    for i in 0..8 {
        let ipc = 1.4 - 0.05 * (i % 4) as f64;
        phases.push(startup_phase(ipc, 6.0, 0.22, 0.72, 56.0));
    }
    phases
}

/// Go runtime bring-up: ≈6 ms. Static binary: one image-load burst, then
/// allocator/scheduler init at high IPC.
fn go_startup() -> Vec<ExecPhase> {
    const SHAPE: [(f64, f64, f64, f64, f64); 6] = [
        (0.85, 14.0, 0.42, 0.85, 5.0), // binary + runtime image load
        (1.10, 9.0, 0.35, 0.80, 8.0),  // heap arenas
        (1.70, 4.0, 0.22, 0.72, 9.0),  // scheduler + GC init
        (2.10, 2.5, 0.18, 0.68, 10.0), // package init (compute)
        (1.50, 5.0, 0.25, 0.74, 10.0),
        (1.90, 3.0, 0.20, 0.70, 10.0), // main prologue
    ];
    SHAPE
        .iter()
        .map(|&(ipc, mpki, ratio, blocking, fp)| startup_phase(ipc, mpki, ratio, blocking, fp))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_table1() {
        assert_eq!(Language::Python.abbr(), "py");
        assert_eq!(Language::NodeJs.abbr(), "nj");
        assert_eq!(Language::Go.abbr(), "go");
    }

    #[test]
    fn startup_lengths_match_fig6_scale() {
        assert_eq!(Language::Python.startup_phases().len(), 19);
        assert_eq!(Language::NodeJs.startup_phases().len(), 100);
        assert_eq!(Language::Go.startup_phases().len(), 6);
        for lang in Language::ALL {
            assert_eq!(lang.startup_phases().len(), lang.startup_ms());
        }
    }

    #[test]
    fn python_probe_window_is_about_45m_instructions() {
        let total = Language::Python.startup_instructions();
        assert!(
            (40.0e6..52.0e6).contains(&total),
            "python startup ≈45M instructions, got {total}"
        );
    }

    #[test]
    fn startups_are_memory_heavy() {
        for lang in Language::ALL {
            let phases = lang.startup_phases();
            let avg_mpki: f64 = phases.iter().map(|p| p.l2_mpki).sum::<f64>() / phases.len() as f64;
            assert!(
                avg_mpki > 3.5,
                "{lang} startup must stress shared resources, avg mpki {avg_mpki}"
            );
        }
    }

    #[test]
    fn startup_phases_validate_in_profiles() {
        for lang in Language::ALL {
            let mut builder = litmus_sim::ExecutionProfile::builder(format!("{lang}-startup"));
            for phase in lang.startup_phases() {
                builder = builder.startup_phase(phase);
            }
            let profile = builder.build().expect("startup phases must be valid");
            assert!(profile.has_startup());
        }
    }

    #[test]
    fn target_ipc_is_reachable() {
        // Below the 70% stall budget, the shaped phase hits the target
        // IPC exactly on the reference machine.
        let phase = startup_phase(1.0, 6.0, 0.3, 0.8, 10.0);
        let post_l2 = REF_L3_LATENCY + 0.3 * REF_MEM_LATENCY;
        let stall = 6.0 / 1000.0 * 0.8 * post_l2;
        assert!(stall < 0.70, "test premise: below budget");
        let achieved_cpi = phase.cpi_private + stall;
        assert!((achieved_cpi - 1.0).abs() < 0.01);
    }

    #[test]
    fn stall_budget_clamps_infeasible_phases() {
        // A phase demanding more stall than its cycle budget is clamped
        // to 70% stall rather than producing a floored private CPI.
        let phase = startup_phase(0.7, 20.0, 0.45, 0.88, 10.0);
        let post_l2 = REF_L3_LATENCY + 0.45 * REF_MEM_LATENCY;
        let stall = phase.l2_mpki / 1000.0 * 0.88 * post_l2;
        let budget = 0.70 / 0.7;
        assert!((stall - budget).abs() < 1e-9);
        assert!(phase.cpi_private > 0.06);
    }

    #[test]
    fn display_names() {
        assert_eq!(Language::Python.to_string(), "Python");
        assert_eq!(Language::NodeJs.to_string(), "Node.js");
        assert_eq!(Language::Go.to_string(), "Go");
    }
}
