use std::fmt;

use litmus_sim::{ExecPhase, ExecutionProfile};

use crate::language::Language;

/// Reference solo latencies used when shaping body phases to a target
/// IPC (see `language.rs` for the same constants and rationale).
const REF_L3_LATENCY: f64 = 42.0;
const REF_MEM_LATENCY: f64 = 210.0;
const INSTR_PER_MS_AT_IPC1: f64 = 2.8e6;

/// Benchmark suite a function originates from (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteOrigin {
    /// SeBS serverless benchmark suite.
    SeBs,
    /// FunctionBench.
    FunctionBench,
    /// Google's Online Boutique microservice demo.
    OnlineBoutique,
    /// DeathStarBench Hotel Reservation.
    HotelReservation,
    /// AWS sample functions / other.
    Other,
}

impl fmt::Display for SuiteOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SuiteOrigin::SeBs => "SeBS",
            SuiteOrigin::FunctionBench => "FunctionBench",
            SuiteOrigin::OnlineBoutique => "Online Boutique",
            SuiteOrigin::HotelReservation => "Hotel Reservation",
            SuiteOrigin::Other => "Other",
        };
        write!(f, "{name}")
    }
}

/// One serverless benchmark from paper Table 1, modelled as a
/// language-runtime startup followed by a calibrated body.
///
/// The body parameters (solo duration, IPC, L2 MPKI, L3 miss ratio, MLP
/// blocking, footprint) were chosen per function so that the co-run
/// slowdown landscape reproduces the paper's Figs. 2–4: graph workloads
/// (`pager-py`, `mst-py`, `bfs-py`) leaning hardest on shared resources,
/// `float-py` being ≈99.9% private, disk workloads modelled as memory
/// streaming, and so on.
///
/// # Examples
///
/// ```
/// let b = litmus_workloads::suite::by_name("float-py").unwrap();
/// assert!(!b.is_reference());
/// let profile = b.profile();
/// assert_eq!(profile.name(), "float-py");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    name: &'static str,
    function: &'static str,
    language: Language,
    origin: SuiteOrigin,
    reference: bool,
    body_ms: f64,
    body_ipc: f64,
    body_l2_mpki: f64,
    body_l3_ratio: f64,
    body_blocking: f64,
    body_footprint_mb: f64,
}

impl Benchmark {
    /// Constructs a benchmark definition (used by [`crate::suite`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) const fn new(
        name: &'static str,
        function: &'static str,
        language: Language,
        origin: SuiteOrigin,
        reference: bool,
        body_ms: f64,
        body_ipc: f64,
        body_l2_mpki: f64,
        body_l3_ratio: f64,
        body_blocking: f64,
        body_footprint_mb: f64,
    ) -> Self {
        Benchmark {
            name,
            function,
            language,
            origin,
            reference,
            body_ms,
            body_ipc,
            body_l2_mpki,
            body_l3_ratio,
            body_blocking,
            body_footprint_mb,
        }
    }

    /// Table-1 abbreviation, e.g. `"pager-py"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Human-readable function name, e.g. `"Graph Rank"`.
    pub fn function(&self) -> &'static str {
        self.function
    }

    /// Implementation language.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Source benchmark suite.
    pub fn origin(&self) -> SuiteOrigin {
        self.origin
    }

    /// Whether the paper marks this function (`*`) as a provider-side
    /// reference used to build performance tables (§6 step 2).
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    /// Nominal solo duration of the body in milliseconds.
    pub fn body_ms(&self) -> f64 {
        self.body_ms
    }

    /// The complete execution profile: language startup prefix + body.
    pub fn profile(&self) -> ExecutionProfile {
        let mut builder = ExecutionProfile::builder(self.name);
        for phase in self.language.startup_phases() {
            builder = builder.startup_phase(phase);
        }
        builder = builder.phase(self.body_phase());
        builder.build().expect("benchmark parameters are valid") // lint:allow(panic-in-lib): parameters are compile-time constants validated by unit tests
    }

    /// The body as a single shaped phase.
    fn body_phase(&self) -> ExecPhase {
        let post_l2 = REF_L3_LATENCY + self.body_l3_ratio * REF_MEM_LATENCY;
        let stall = self.body_l2_mpki / 1000.0 * self.body_blocking * post_l2;
        let cpi_private = (1.0 / self.body_ipc - stall).max(0.06);
        ExecPhase::new(
            INSTR_PER_MS_AT_IPC1 * self.body_ipc * self.body_ms,
            cpi_private,
            self.body_l2_mpki,
            self.body_l3_ratio,
            self.body_blocking,
            self.body_footprint_mb,
        )
    }

    /// Solo `T_shared` share of total time implied by the body shape —
    /// used by tests to check the Fig. 4 landscape.
    pub fn solo_shared_fraction(&self) -> f64 {
        let post_l2 = REF_L3_LATENCY + self.body_l3_ratio * REF_MEM_LATENCY;
        let stall = self.body_l2_mpki / 1000.0 * self.body_blocking * post_l2;
        stall * self.body_ipc
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, if self.reference { "*" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Benchmark {
        Benchmark::new(
            "test-py",
            "Test",
            Language::Python,
            SuiteOrigin::SeBs,
            true,
            100.0,
            1.2,
            3.0,
            0.4,
            0.8,
            20.0,
        )
    }

    #[test]
    fn profile_has_startup_and_body() {
        let b = sample();
        let p = b.profile();
        assert_eq!(p.startup_len(), 19);
        assert_eq!(p.phases().len(), 20);
        assert_eq!(p.name(), "test-py");
    }

    #[test]
    fn body_instructions_scale_with_duration_and_ipc() {
        let b = sample();
        let p = b.profile();
        let body_instr = p.total_instructions() - p.startup_instructions();
        assert!((body_instr - 100.0 * 1.2 * 2.8e6).abs() < 1.0);
    }

    #[test]
    fn display_marks_references_with_star() {
        assert_eq!(sample().to_string(), "test-py*");
    }

    #[test]
    fn shared_fraction_is_a_fraction() {
        let f = sample().solo_shared_fraction();
        assert!(f > 0.0 && f < 1.0);
    }
}
