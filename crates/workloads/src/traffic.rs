use std::fmt;

use litmus_sim::{ExecPhase, ExecutionProfile};

/// The paper's two traffic generators (§3), used by providers to build
/// congestion and performance tables at controlled stress levels.
///
/// Both are multi-threaded; the stress level is the number of spawned
/// threads (1–31 on the 32-core testbed), each pinned to its own core.
///
/// * **CT-Gen** exerts pressure *up to* the L3: massive L2 misses that
///   hit in the L3 (small per-thread footprint, near-zero L3 miss
///   ratio), saturating the shared ring/L3 ports.
/// * **MB-Gen** stresses resources *beyond* the L3: large per-thread
///   footprints and a high L3 miss ratio, consuming DRAM bandwidth and
///   evicting L3 blocks. Its L2 miss count is *lower* than CT-Gen's
///   because it throttles itself on its own L3 misses (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficGenerator {
    /// Core-to-L3 traffic generator.
    CtGen,
    /// Memory-bandwidth traffic generator.
    MbGen,
}

impl TrafficGenerator {
    /// Both generators, CT first (the paper's table order).
    pub const ALL: [TrafficGenerator; 2] = [TrafficGenerator::CtGen, TrafficGenerator::MbGen];

    /// Short name used in table headers (`CT-Gen` / `MB-Gen`).
    pub fn name(&self) -> &'static str {
        match self {
            TrafficGenerator::CtGen => "CT-Gen",
            TrafficGenerator::MbGen => "MB-Gen",
        }
    }

    /// The workload profile of a single generator thread running for
    /// (solo-equivalent) `duration_ms` milliseconds.
    ///
    /// Threads are modelled as one long homogeneous phase; stress level
    /// is produced by launching this profile on N distinct cores.
    pub fn thread_profile(&self, duration_ms: f64) -> ExecutionProfile {
        let phase = self.thread_phase(duration_ms);
        ExecutionProfile::builder(self.name())
            .phase(phase)
            .build()
            .expect("generator parameters are valid") // lint:allow(panic-in-lib): parameters are compile-time constants validated by unit tests
    }

    fn thread_phase(&self, duration_ms: f64) -> ExecPhase {
        match self {
            // Pointer-chase over an L3-resident buffer: every access
            // misses L2, almost none miss L3.
            TrafficGenerator::CtGen => {
                let instr_per_ms = 1.0e6;
                ExecPhase::new(instr_per_ms * duration_ms, 0.35, 65.0, 0.02, 0.9, 0.9)
            }
            // Streaming over a DRAM-sized buffer: fewer L2 misses per
            // instruction than CT-Gen (self-throttled), but most of
            // them miss the L3 too.
            TrafficGenerator::MbGen => {
                let instr_per_ms = 0.8e6;
                ExecPhase::new(instr_per_ms * duration_ms, 0.4, 38.0, 0.85, 0.92, 14.0)
            }
        }
    }
}

impl fmt::Display for TrafficGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_sim::{MachineSpec, Placement, Simulator};

    #[test]
    fn ct_gen_hits_l3_mb_gen_misses_it() {
        let ct = TrafficGenerator::CtGen.thread_profile(10.0);
        let mb = TrafficGenerator::MbGen.thread_profile(10.0);
        let ct_phase = ct.phases()[0];
        let mb_phase = mb.phases()[0];
        assert!(ct_phase.l3_miss_ratio < 0.1);
        assert!(mb_phase.l3_miss_ratio > 0.7);
        assert!(ct_phase.l2_mpki > mb_phase.l2_mpki);
        // CT-Gen's aggregate footprint at 31 threads still fits the L3.
        assert!(ct_phase.footprint_mb * 31.0 < 44.0);
        // MB-Gen's does not.
        assert!(mb_phase.footprint_mb * 31.0 > 44.0);
    }

    #[test]
    fn generators_produce_fig1_miss_ordering() {
        // Run each generator at level 8 and compare machine L3 misses:
        // MB-Gen must dominate L3 misses; CT-Gen must dominate L2 misses.
        let mut results = Vec::new();
        for gen in TrafficGenerator::ALL {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            let ids: Vec<_> = (0..8)
                .map(|core| {
                    sim.launch(gen.thread_profile(50.0), Placement::pinned(core))
                        .unwrap()
                })
                .collect();
            sim.run_until_idle().unwrap();
            let mut l2 = 0.0;
            let mut l3 = 0.0;
            for id in ids {
                let r = sim.report(id).unwrap();
                l2 += r.counters.l2_misses;
                l3 += r.counters.l3_misses;
            }
            results.push((l2, l3));
        }
        let (ct_l2, ct_l3) = results[0];
        let (mb_l2, mb_l3) = results[1];
        assert!(ct_l2 > mb_l2, "CT-Gen generates more L2 misses");
        assert!(mb_l3 > ct_l3 * 5.0, "MB-Gen dominates L3 misses");
    }

    #[test]
    fn higher_levels_generate_more_traffic() {
        let run = |threads: usize| {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            for core in 0..threads {
                sim.launch(
                    TrafficGenerator::MbGen.thread_profile(30.0),
                    Placement::pinned(core),
                )
                .unwrap();
            }
            sim.run_until_idle().unwrap();
            sim.machine_l3_misses()
        };
        assert!(run(16) > run(4) * 2.0);
    }
}
