//! Workload models for the Litmus pricing reproduction.
//!
//! The paper evaluates on 27 serverless functions drawn from SeBS,
//! FunctionBench, DeathStarBench's Hotel Reservation, Google's Online
//! Boutique and AWS samples (Table 1), implemented in Python, Node.js and
//! Go. This crate models each of them as a [`litmus_sim::ExecutionProfile`]:
//! a language-runtime **startup prefix** (the fixed, memory-heavy routine
//! Litmus tests exploit as a congestion probe) followed by **body phases**
//! whose instruction volume, private CPI, L2/L3 miss behaviour and cache
//! footprint are calibrated so the co-run slowdown landscape matches the
//! paper's Figs. 2–4.
//!
//! It also provides:
//!
//! * [`TrafficGenerator`] — the CT-Gen and MB-Gen stressors of §3 used to
//!   build congestion/performance tables;
//! * [`WorkloadMix`] — the §7.1 protocol of keeping N randomly-chosen
//!   functions running by backfilling on every completion.
//!
//! # Examples
//!
//! ```
//! use litmus_workloads::{suite, Language};
//!
//! let all = suite::benchmarks();
//! assert_eq!(all.len(), 27);
//! let refs = suite::reference_benchmarks();
//! assert_eq!(refs.len(), 13);
//! let fib = suite::by_name("fib-py").unwrap();
//! assert_eq!(fib.language(), Language::Python);
//! let profile = fib.profile();
//! assert!(profile.has_startup());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod language;
mod mix;
mod pool;
pub mod suite;
mod traffic;

pub use benchmark::{Benchmark, SuiteOrigin};
pub use language::Language;
pub use mix::WorkloadMix;
pub use pool::BackfillPool;
pub use traffic::TrafficGenerator;
