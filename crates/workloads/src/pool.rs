use litmus_sim::{Event, ExecutionReport, InstanceId, Placement, SimError, Simulator};

use crate::benchmark::Benchmark;
use crate::mix::WorkloadMix;

/// Keeps a fixed number of random filler functions alive on a simulator
/// — the paper's launch-on-completion protocol (§4: "whenever a function
/// finishes, a new randomly-selected function is launched to maintain a
/// total of 26 co-running functions").
///
/// # Examples
///
/// ```
/// use litmus_sim::{MachineSpec, Placement, Simulator};
/// use litmus_workloads::{suite, BackfillPool};
///
/// # fn main() -> Result<(), litmus_sim::SimError> {
/// let mut sim = Simulator::new(MachineSpec::cascade_lake());
/// let mut pool = BackfillPool::new(
///     suite::benchmarks(),
///     42,
///     Placement::pool_range(0, 8),
/// ).expect("non-empty pool");
/// pool.fill(&mut sim, 16)?;
/// pool.run(&mut sim, 100)?; // 100 ms with backfill
/// assert_eq!(pool.live(), 16);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct BackfillPool {
    mix: WorkloadMix,
    placement: Placement,
    live: Vec<InstanceId>,
}

impl BackfillPool {
    /// Creates a pool drawing fillers from `pool` with deterministic
    /// `seed`, launching them with `placement`.
    ///
    /// Returns `None` when `pool` is empty.
    pub fn new(pool: Vec<Benchmark>, seed: u64, placement: Placement) -> Option<Self> {
        Some(BackfillPool::from_mix(
            WorkloadMix::new(pool, seed)?,
            placement,
        ))
    }

    /// Creates a pool from a pre-configured [`WorkloadMix`] (e.g. a
    /// scaled one for fast tests).
    pub fn from_mix(mix: WorkloadMix, placement: Placement) -> Self {
        BackfillPool {
            mix,
            placement,
            live: Vec::new(),
        }
    }

    /// Number of currently live fillers.
    pub fn live(&self) -> usize {
        self.live.len()
    }

    /// The placement fillers are launched with.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Launches fillers until `count` are alive.
    ///
    /// # Errors
    ///
    /// Propagates launch failures (invalid placement for the machine).
    pub fn fill(&mut self, sim: &mut Simulator, count: usize) -> Result<(), SimError> {
        while self.live.len() < count {
            let id = sim.launch(self.mix.next_profile(), self.placement.clone())?;
            self.live.push(id);
        }
        Ok(())
    }

    /// Steps `ms` quanta, backfilling completed fillers.
    ///
    /// # Errors
    ///
    /// Propagates backfill launch failures.
    pub fn run(&mut self, sim: &mut Simulator, ms: u64) -> Result<(), SimError> {
        for _ in 0..ms {
            let events = sim.step();
            self.backfill(sim, &events)?;
        }
        Ok(())
    }

    /// Steps until `target` completes (backfilling fillers throughout)
    /// and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates backfill/report failures; [`SimError::UnknownInstance`]
    /// if `target` was never launched.
    pub fn run_until(
        &mut self,
        sim: &mut Simulator,
        target: InstanceId,
    ) -> Result<ExecutionReport, SimError> {
        // Validate the target before stepping forever on a bogus id.
        sim.state(target)?;
        loop {
            let events = sim.step();
            let done = events
                .iter()
                .any(|&Event::Completed { id, .. }| id == target);
            self.backfill(sim, &events)?;
            if done {
                return sim.report(target);
            }
        }
    }

    /// Replaces every completed filler among `events` with a fresh draw.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn backfill(&mut self, sim: &mut Simulator, events: &[Event]) -> Result<(), SimError> {
        for &Event::Completed { id, .. } in events {
            if let Some(pos) = self.live.iter().position(|&l| l == id) {
                self.live.swap_remove(pos);
                let new_id = sim.launch(self.mix.next_profile(), self.placement.clone())?;
                self.live.push(new_id);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use litmus_sim::MachineSpec;

    #[test]
    fn pool_maintains_population() {
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let mut pool =
            BackfillPool::new(suite::benchmarks(), 7, Placement::pool_range(0, 4)).unwrap();
        pool.fill(&mut sim, 8).unwrap();
        assert_eq!(pool.live(), 8);
        // Run long enough for completions to occur, population holds.
        pool.run(&mut sim, 3000).unwrap();
        assert_eq!(pool.live(), 8);
        assert_eq!(sim.active_instances(), 8);
    }

    #[test]
    fn run_until_returns_target_report() {
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let mut pool =
            BackfillPool::new(suite::benchmarks(), 7, Placement::pool_range(1, 5)).unwrap();
        pool.fill(&mut sim, 4).unwrap();
        let target = sim
            .launch(
                suite::by_name("auth-go").unwrap().profile(),
                Placement::pinned(0),
            )
            .unwrap();
        let report = pool.run_until(&mut sim, target).unwrap();
        assert_eq!(report.name, "auth-go");
    }

    #[test]
    fn run_until_rejects_unknown_target() {
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let mut pool =
            BackfillPool::new(suite::benchmarks(), 7, Placement::pool_range(0, 4)).unwrap();
        let bogus = {
            // An id from a different simulator.
            let mut other = Simulator::new(MachineSpec::cascade_lake());
            let id = other
                .launch(
                    suite::by_name("auth-go").unwrap().profile(),
                    Placement::pinned(0),
                )
                .unwrap();
            let _ = other;
            id
        };
        // The id value 0 may exist in `sim` only if something was
        // launched; here nothing was, so it must error.
        assert!(pool.run_until(&mut sim, bogus).is_err());
    }

    #[test]
    fn empty_pool_rejected() {
        assert!(BackfillPool::new(Vec::new(), 1, Placement::pinned(0)).is_none());
    }
}
