//! Fixture round-trip: parse → serialize → reparse must be the
//! identity, and the serialized bytes must match the bundled files
//! exactly. CI runs this so any drift between the parser and the
//! published Azure Functions 2019 format fails fast.

use litmus_trace::{fixture, AzureDataset, Trigger};

#[test]
fn fixture_parses_with_the_expected_shape() {
    let dataset = fixture::dataset();
    assert_eq!(dataset.minutes(), 15);
    assert_eq!(dataset.functions().len(), 9);
    assert_eq!(dataset.apps().len(), 5);
    assert!(!dataset.is_empty());
    for function in dataset.functions() {
        assert_eq!(function.counts.len(), dataset.minutes());
        assert!(function.mean_duration_ms > 0.0);
        assert!(function.min_duration_ms <= function.max_duration_ms);
        assert_eq!(function.duration_ms.points().len(), 7);
    }
    for app in dataset.apps() {
        assert!(app.sample_count > 0);
        assert_eq!(app.allocated_mb.points().len(), 8);
    }
    // The timer function fires exactly once a minute.
    let nightly = dataset
        .functions()
        .iter()
        .find(|f| f.function == "nightly")
        .expect("fixture has the timer function");
    assert_eq!(nightly.trigger, Trigger::Timer);
    assert!(nightly.counts.iter().all(|&c| c == 1));
    // cronjobs deliberately has no memory row.
    assert!(dataset.memory_of("deadbeef", "cronjobs").is_none());
}

#[test]
fn fixture_round_trips_through_the_writer() {
    let dataset = fixture::dataset();
    let invocations = dataset.to_invocations_csv();
    let durations = dataset.to_durations_csv();
    let memory = dataset.to_memory_csv();

    // Dataset-level identity: reparsing the writer's output yields the
    // same dataset.
    let reparsed = AzureDataset::from_csv(&invocations, &durations, &memory)
        .expect("serialized fixture reparses");
    assert_eq!(dataset, reparsed);

    // Byte-level identity with the bundled files: the fixture is kept
    // in the writer's canonical form, so any divergence means the
    // format (or the fixture) drifted.
    assert_eq!(invocations, fixture::INVOCATIONS_CSV);
    assert_eq!(durations, fixture::DURATIONS_CSV);
    assert_eq!(memory, fixture::MEMORY_CSV);
}

#[test]
fn fixture_loads_from_disk_too() {
    // from_dir is the path the full downloaded dataset will use; keep
    // it exercised against the same fixture directory.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let dataset = AzureDataset::from_dir(dir).expect("fixture dir parses");
    assert_eq!(dataset, fixture::dataset());
    assert!(AzureDataset::from_dir("/nonexistent-trace-dir").is_err());
}
