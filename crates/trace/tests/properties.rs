//! Property tests for the trace layer: merge preserves global time
//! order and event count; transforms never reorder surviving events
//! and never rewrite tenant ids.

use litmus_platform::{InvocationTrace, TenantId, TraceEvent};
use litmus_trace::TraceTransform;
use litmus_workloads::suite;
use litmus_workloads::Benchmark;
use proptest::prelude::*;

fn benchmarks() -> Vec<Benchmark> {
    suite::benchmarks()
}

/// Builds a trace from generated `(at_ms, tenant, function index)`
/// triples.
fn trace_from(raw: &[(u64, u32, usize)]) -> InvocationTrace {
    let pool = benchmarks();
    InvocationTrace::from_events(
        raw.iter()
            .map(|&(at_ms, tenant, bench)| TraceEvent {
                at_ms,
                function: pool[bench % pool.len()].clone(),
                tenant: TenantId(tenant),
            })
            .collect(),
    )
}

/// The per-tenant event sequence, as `(at_ms, function name)` pairs —
/// the identity transforms must preserve in order.
fn tenant_sequence(trace: &InvocationTrace, tenant: TenantId) -> Vec<(u64, &'static str)> {
    trace
        .events()
        .iter()
        .filter(|e| e.tenant == tenant)
        .map(|e| (e.at_ms, e.function.name()))
        .collect()
}

fn assert_time_ordered(trace: &InvocationTrace) {
    for pair in trace.events().windows(2) {
        assert!(
            pair[0].at_ms <= pair[1].at_ms,
            "events out of order: {} then {}",
            pair[0].at_ms,
            pair[1].at_ms
        );
    }
}

/// `needle` must appear inside `haystack` in order (not necessarily
/// contiguously).
fn is_subsequence<T: PartialEq>(needle: &[T], haystack: &[T]) -> bool {
    let mut it = haystack.iter();
    needle
        .iter()
        .all(|item| it.any(|candidate| candidate == item))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging two traces preserves the global event count and yields
    /// a time-ordered trace containing every tenant's events in their
    /// original per-tenant order.
    #[test]
    fn merge_preserves_time_order_and_count(
        left in prop::collection::vec((0u64..20_000, 0u32..5, 0usize..27), 0..80),
        right in prop::collection::vec((0u64..20_000, 0u32..5, 0usize..27), 0..80),
    ) {
        let a = trace_from(&left);
        let b = trace_from(&right);
        let merged = a.clone().merge(b.clone());
        prop_assert_eq!(merged.len(), a.len() + b.len());
        assert_time_ordered(&merged);
        // No event is invented or lost: multiset equality via sorted
        // projections.
        let project = |t: &InvocationTrace| {
            let mut v: Vec<(u64, u32, &'static str)> = t
                .events()
                .iter()
                .map(|e| (e.at_ms, e.tenant.0, e.function.name()))
                .collect();
            v.sort_unstable();
            v
        };
        let mut expected = project(&a);
        expected.extend(project(&b));
        expected.sort_unstable();
        prop_assert_eq!(project(&merged), expected);
    }

    /// Every transform chain yields a time-ordered trace whose
    /// surviving events keep their tenant ids and their per-tenant
    /// order — transforms drop and shift, never shuffle or relabel.
    #[test]
    fn transforms_never_reorder_or_relabel(
        raw in prop::collection::vec((0u64..50_000, 0u32..6, 0usize..27), 1..120),
        divisor in 1u64..500,
        keep_milli in 0u32..1000,
        thin_seed in 0u64..1000,
        window_start in 0u64..40_000,
        window_len in 1u64..30_000,
    ) {
        let trace = trace_from(&raw);
        let chains: Vec<Vec<TraceTransform>> = vec![
            vec![TraceTransform::Compress { divisor }],
            vec![TraceTransform::ScaleRate {
                keep_fraction: keep_milli as f64 / 1000.0,
                seed: thin_seed,
            }],
            vec![TraceTransform::Subsample {
                tenants: vec![TenantId(0), TenantId(2), TenantId(4)],
            }],
            vec![TraceTransform::Window {
                start_ms: window_start,
                end_ms: window_start + window_len,
            }],
            // A full pipeline, in order.
            vec![
                TraceTransform::Window {
                    start_ms: window_start,
                    end_ms: window_start + window_len,
                },
                TraceTransform::ScaleRate {
                    keep_fraction: keep_milli as f64 / 1000.0,
                    seed: thin_seed,
                },
                TraceTransform::Compress { divisor },
            ],
        ];
        for transforms in chains {
            let out = litmus_trace::apply(&trace, &transforms).unwrap();
            prop_assert!(out.len() <= trace.len());
            assert_time_ordered(&out);
            // Tenant ids survive untouched: every output tenant existed
            // in the input.
            let input_tenants = trace.tenants();
            for tenant in out.tenants() {
                prop_assert!(input_tenants.contains(&tenant));
            }
            // Per-tenant function order is a subsequence of the input's
            // (times may shift; the sequence of bodies may not).
            for tenant in out.tenants() {
                let out_seq: Vec<&'static str> = tenant_sequence(&out, tenant)
                    .into_iter()
                    .map(|(_, name)| name)
                    .collect();
                let in_seq: Vec<&'static str> = tenant_sequence(&trace, tenant)
                    .into_iter()
                    .map(|(_, name)| name)
                    .collect();
                prop_assert!(
                    is_subsequence(&out_seq, &in_seq),
                    "tenant {tenant} resequenced under {transforms:?}"
                );
            }
        }
    }

    /// Compression is exact integer division of arrival times, for
    /// every event.
    #[test]
    fn compress_is_pointwise_division(
        raw in prop::collection::vec((0u64..100_000, 0u32..4, 0usize..27), 1..60),
        divisor in 1u64..1_000,
    ) {
        let trace = trace_from(&raw);
        let out = litmus_trace::apply(&trace, &[TraceTransform::Compress { divisor }]).unwrap();
        prop_assert_eq!(out.len(), trace.len());
        // Compression can merge distinct times into ties, and the
        // canonical (at_ms, tenant) re-sort may swap cross-tenant ties,
        // so compare multisets of (compressed time, tenant, function).
        let mut expected: Vec<(u64, u32, &'static str)> = trace
            .events()
            .iter()
            .map(|e| (e.at_ms / divisor, e.tenant.0, e.function.name()))
            .collect();
        expected.sort_unstable();
        let mut got: Vec<(u64, u32, &'static str)> = out
            .events()
            .iter()
            .map(|e| (e.at_ms, e.tenant.0, e.function.name()))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
