//! Property tests for full-dataset ingestion: any partition of the
//! fixture's rows into shards — in any assignment order — parses to
//! the same `AzureDataset`, and lossy ingestion's per-category
//! counters always account for every input row.

use litmus_trace::test_support::{write_assigned, TempDir};
use litmus_trace::{fixture, AzureDataset, IngestMode, LossyIngest};
use proptest::prelude::*;

/// How one duration row is mutated by the lossy-counter property.
#[derive(Clone, Copy, PartialEq)]
enum RowFate {
    Keep,
    Drop,
    ZeroCount,
    NanPercentile,
    Duplicate,
}

impl RowFate {
    fn from_index(idx: usize) -> RowFate {
        match idx % 5 {
            0 => RowFate::Keep,
            1 => RowFate::Drop,
            2 => RowFate::ZeroCount,
            3 => RowFate::NanPercentile,
            _ => RowFate::Duplicate,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shard-order invariance: however the fixture's rows are dealt
    /// across however many shards per family, `from_dir` parses the
    /// identical dataset — including when a shard ends up empty.
    #[test]
    fn any_shard_partition_parses_to_the_same_dataset(
        inv_shards in 1usize..5,
        dur_shards in 1usize..5,
        mem_shards in 1usize..4,
        inv_assign in prop::collection::vec(0usize..4, 9..10),
        dur_assign in prop::collection::vec(0usize..4, 9..10),
        mem_assign in prop::collection::vec(0usize..4, 5..6),
    ) {
        let dir = TempDir::new("ingest-prop");
        write_assigned(
            &dir,
            "invocations_per_function",
            fixture::INVOCATIONS_CSV,
            inv_shards,
            &inv_assign,
        );
        write_assigned(
            &dir,
            "function_durations",
            fixture::DURATIONS_CSV,
            dur_shards,
            &dur_assign,
        );
        write_assigned(&dir, "app_memory", fixture::MEMORY_CSV, mem_shards, &mem_assign);

        let (dataset, report) =
            AzureDataset::from_dir_with(dir.path(), IngestMode::Strict)
                .expect("sharded dir parses");
        prop_assert_eq!(&dataset, &fixture::dataset());
        prop_assert_eq!(report.invocation_shards, inv_shards as u64);
        prop_assert_eq!(report.duration_shards, dur_shards as u64);
        prop_assert_eq!(report.memory_shards, mem_shards as u64);
        prop_assert!(report.is_balanced());
        prop_assert_eq!(report.dropped(), 0);
    }

    /// Counter conservation: whatever mix of dropped, zero-count,
    /// poisoned and duplicated duration rows lossy ingestion faces,
    /// every input row lands in exactly one bucket — kept, imputed or
    /// one named skip category — under both lossy policies.
    #[test]
    fn lossy_counters_account_for_every_input_row(
        fate_seed in prop::collection::vec(0usize..5, 9..10),
        policy_pick in 0usize..2,
    ) {
        let policy = if policy_pick == 0 {
            LossyIngest::Skip
        } else {
            LossyIngest::ImputeMedians
        };
        let mut lines = fixture::DURATIONS_CSV.lines();
        let header = lines.next().unwrap();
        let mut durations = format!("{header}\n");
        let (mut n_drop, mut n_zero, mut n_nan, mut n_dup) = (0u64, 0u64, 0u64, 0u64);
        let mut rows_written = 0u64;
        for (idx, line) in lines.enumerate() {
            match RowFate::from_index(fate_seed.get(idx).copied().unwrap_or(0)) {
                RowFate::Keep => {
                    durations.push_str(line);
                    durations.push('\n');
                    rows_written += 1;
                }
                RowFate::Drop => n_drop += 1,
                RowFate::ZeroCount => {
                    let mut cells: Vec<&str> = line.split(',').collect();
                    cells[4] = "0";
                    durations.push_str(&cells.join(","));
                    durations.push('\n');
                    rows_written += 1;
                    n_zero += 1;
                }
                RowFate::NanPercentile => {
                    let mut cells: Vec<&str> = line.split(',').collect();
                    let last = cells.len() - 1;
                    cells[last] = "NaN";
                    durations.push_str(&cells.join(","));
                    durations.push('\n');
                    rows_written += 1;
                    n_nan += 1;
                }
                RowFate::Duplicate => {
                    durations.push_str(line);
                    durations.push('\n');
                    durations.push_str(line);
                    durations.push('\n');
                    rows_written += 2;
                    n_dup += 1;
                }
            }
        }

        let (dataset, report) = AzureDataset::from_csv_with(
            fixture::INVOCATIONS_CSV,
            &durations,
            fixture::MEMORY_CSV,
            IngestMode::Lossy(policy),
        )
        .expect("lossy ingestion absorbs degenerate rows");

        // Totals match the text actually fed in…
        prop_assert_eq!(report.invocation_rows, 9);
        prop_assert_eq!(report.duration_rows, rows_written);
        prop_assert_eq!(report.memory_rows, 5);
        // …each mutation lands in its named bucket…
        prop_assert_eq!(report.zero_count_durations_skipped, n_zero);
        prop_assert_eq!(report.invalid_durations_skipped, n_nan);
        prop_assert_eq!(report.duplicate_durations_skipped, n_dup);
        prop_assert_eq!(report.orphan_durations_skipped, 0);
        // …functions are conserved against the invocations file…
        let degenerate = n_drop + n_zero + n_nan;
        match policy {
            LossyIngest::Skip => {
                prop_assert_eq!(report.missing_duration_skipped, degenerate);
                prop_assert_eq!(report.functions, 9 - degenerate);
                prop_assert_eq!(report.imputed(), 0);
            }
            LossyIngest::ImputeMedians => {
                prop_assert_eq!(report.missing_duration_skipped, 0);
                prop_assert_eq!(report.functions + report.unimputable_skipped, 9);
                prop_assert_eq!(
                    report.imputed() + report.unimputable_skipped,
                    degenerate
                );
            }
        }
        prop_assert_eq!(report.functions, dataset.functions().len() as u64);
        // …and the full conservation identities hold.
        prop_assert!(report.is_balanced(), "unbalanced: {:?}", report);
    }
}
