use std::fmt;

/// Errors from trace ingestion, expansion and transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A CSV file failed to parse. `file` names which of the three
    /// Azure trace files, `line` is 1-based (line 1 is the header).
    Parse {
        /// Which trace file (`"invocations"`, `"durations"`,
        /// `"memory"`).
        file: &'static str,
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The three files disagree: a function appears in one file but
    /// its required counterpart row is missing in another.
    Unjoined {
        /// Which trace file the counterpart was expected in.
        file: &'static str,
        /// The `owner/app/function` key that failed to join.
        key: String,
    },
    /// A trace directory has no file for one of the three CSV
    /// families — neither the unsharded name nor any `<stem>*.csv`
    /// shard.
    MissingFamily {
        /// Which trace family (`"invocations"`, `"durations"`,
        /// `"memory"`).
        family: &'static str,
        /// The directory that was searched.
        dir: String,
    },
    /// A percentile sketch was degenerate (empty, unordered
    /// percentiles, decreasing or non-finite values).
    InvalidSketch(&'static str),
    /// An expansion or transform configuration was incoherent.
    InvalidConfig(&'static str),
    /// Reading a trace file from disk failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file} csv, line {line}: {message}")
            }
            TraceError::Unjoined { file, key } => {
                write!(f, "function {key} has no row in the {file} csv")
            }
            TraceError::MissingFamily { family, dir } => {
                write!(f, "no {family} csv (sharded or not) found in {dir}")
            }
            TraceError::InvalidSketch(why) => write!(f, "invalid percentile sketch: {why}"),
            TraceError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            TraceError::Io(why) => write!(f, "trace file i/o: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        TraceError::Io(err.to_string())
    }
}
