//! Order-preserving trace transforms, applicable to any streaming
//! [`TraceSource`] (or a materialized [`InvocationTrace`]): compress
//! time, thin the arrival rate, subsample tenants, slice a window.
//!
//! Every transform is a *monotone filter-map* on the stream — it may
//! drop events and shift times, but it never rewrites a tenant id and
//! never reorders a tenant's surviving events. One caveat on
//! *cross-tenant* order: compression can collapse distinct arrival
//! times into ties, and same-millisecond ties are always re-normalized
//! into the canonical ascending-tenant order [`TraceSource`] requires —
//! so a transformed source stays a valid time-ordered source, and
//! streaming it is bit-identical to materializing it.

use litmus_platform::{InvocationTrace, TenantId, TraceEvent, TraceSource};

use crate::error::TraceError;
use crate::Result;

/// One order-preserving rewrite of a trace stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceTransform {
    /// Divides every arrival time by `divisor` — replay a day-long
    /// trace in minutes while keeping every tenant's arrivals in their
    /// relative order. Distinct times that collapse into one
    /// millisecond become ties, and ties are re-sorted into the
    /// canonical `(at_ms, tenant)` order — cross-tenant positions
    /// within a tie may therefore differ from the input's.
    Compress {
        /// Time divisor, ≥ 1.
        divisor: u64,
    },
    /// Keeps each event independently with probability
    /// `keep_fraction`, decided by a deterministic per-event hash of
    /// the seed and the event's position in the *input* stream — so
    /// the same seed always keeps the same events, and composing
    /// further transforms downstream never re-rolls the dice.
    ScaleRate {
        /// Fraction of events to keep, in `[0, 1]`.
        keep_fraction: f64,
        /// Thinning seed.
        seed: u64,
    },
    /// Keeps only the listed tenants' events.
    Subsample {
        /// Tenants to keep.
        tenants: Vec<TenantId>,
    },
    /// Keeps events with `start_ms <= at_ms < end_ms`, rebasing times
    /// so the window starts at zero.
    Window {
        /// Inclusive window start, ms.
        start_ms: u64,
        /// Exclusive window end, ms.
        end_ms: u64,
    },
}

impl TraceTransform {
    fn validate(&self) -> Result<()> {
        match self {
            TraceTransform::Compress { divisor } => {
                if *divisor == 0 {
                    return Err(TraceError::InvalidConfig("compress divisor must be ≥ 1"));
                }
            }
            TraceTransform::ScaleRate { keep_fraction, .. } => {
                if !(0.0..=1.0).contains(keep_fraction) {
                    return Err(TraceError::InvalidConfig("keep_fraction must be in [0, 1]"));
                }
            }
            TraceTransform::Subsample { .. } => {}
            TraceTransform::Window { start_ms, end_ms } => {
                if start_ms >= end_ms {
                    return Err(TraceError::InvalidConfig(
                        "window start must precede its end",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Applies this transform to one event (`index` is the event's
    /// 0-based position in the *input* stream).
    fn apply(&self, mut event: TraceEvent, index: u64) -> Step {
        match self {
            TraceTransform::Compress { divisor } => {
                event.at_ms /= divisor;
                Step::Keep(event)
            }
            TraceTransform::ScaleRate {
                keep_fraction,
                seed,
            } => {
                if unit_hash(*seed, index) < *keep_fraction {
                    Step::Keep(event)
                } else {
                    Step::Drop
                }
            }
            TraceTransform::Subsample { tenants } => {
                if tenants.contains(&event.tenant) {
                    Step::Keep(event)
                } else {
                    Step::Drop
                }
            }
            TraceTransform::Window { start_ms, end_ms } => {
                if event.at_ms < *start_ms {
                    Step::Drop
                } else if event.at_ms < *end_ms {
                    event.at_ms -= start_ms;
                    Step::Keep(event)
                } else {
                    // Every transform is monotone in time, so this
                    // stage's input can only grow: nothing later will
                    // ever re-enter the window.
                    Step::Finished
                }
            }
        }
    }
}

/// Outcome of one transform stage on one event.
enum Step {
    /// The (possibly rewritten) event continues down the chain.
    Keep(TraceEvent),
    /// This event is dropped; later events may still survive.
    Drop,
    /// This event is dropped and, by time-monotonicity, so is every
    /// later one — the stream can end without draining the source.
    Finished,
}

/// SplitMix64 finalizer over `(seed, index)`, mapped to `[0, 1)` — the
/// thinning coin for [`TraceTransform::ScaleRate`].
fn unit_hash(seed: u64, index: u64) -> f64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A [`TraceSource`] with a chain of [`TraceTransform`]s applied in
/// order, lazily, event by event.
///
/// The output honours the full [`TraceSource`] contract, including
/// ascending-tenant order among same-millisecond ties: compression can
/// *create* cross-tenant ties out of events the input ordered by their
/// original times, so each run of equal output times is buffered and
/// re-sorted by tenant before it is yielded. Memory therefore tracks
/// the largest tie run — one compressed millisecond's worth of events —
/// not the trace.
#[derive(Debug, Clone)]
pub struct TransformedSource<S> {
    source: S,
    transforms: Vec<TraceTransform>,
    index: u64,
    /// The current run of equal-`at_ms` output events, canonically
    /// ordered; drained front to back.
    ties: std::collections::VecDeque<TraceEvent>,
    /// First transformed event beyond the current run.
    pending: Option<TraceEvent>,
    /// Set once a window stage proves no later event can survive; the
    /// rest of the source is never pulled.
    finished: bool,
}

impl<S: TraceSource> TransformedSource<S> {
    /// Wraps `source`, applying `transforms` left to right to every
    /// event.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidConfig`] for a zero compress divisor, a
    /// keep fraction outside `[0, 1]`, or an inverted window.
    pub fn new(source: S, transforms: Vec<TraceTransform>) -> Result<Self> {
        for transform in &transforms {
            transform.validate()?;
        }
        Ok(TransformedSource {
            source,
            transforms,
            index: 0,
            ties: std::collections::VecDeque::new(),
            pending: None,
            finished: false,
        })
    }

    /// Pulls input events through the transform chain until one
    /// survives — or a window stage proves the stream is over, which
    /// ends it without draining (or expanding) the rest of the source.
    fn next_transformed(&mut self) -> Option<TraceEvent> {
        'events: while !self.finished {
            let mut event = self.source.next_event()?;
            let index = self.index;
            self.index += 1;
            for transform in &self.transforms {
                match transform.apply(event, index) {
                    Step::Keep(kept) => event = kept,
                    Step::Drop => continue 'events,
                    Step::Finished => {
                        self.finished = true;
                        return None;
                    }
                }
            }
            return Some(event);
        }
        None
    }
}

impl<S: TraceSource> TraceSource for TransformedSource<S> {
    fn next_event(&mut self) -> Option<TraceEvent> {
        if let Some(event) = self.ties.pop_front() {
            return Some(event);
        }
        // Collect the next run of equal output times and restore the
        // canonical ascending-tenant tie order (the sort is stable, so
        // same-tenant events keep their input order — exactly what the
        // materialized path's stable re-sort produces).
        let first = self.pending.take().or_else(|| self.next_transformed())?;
        let at_ms = first.at_ms;
        let mut run = vec![first];
        loop {
            match self.next_transformed() {
                Some(event) if event.at_ms == at_ms => run.push(event),
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        run.sort_by_key(|e| e.tenant);
        self.ties.extend(run);
        self.ties.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.ties.len() + usize::from(self.pending.is_some());
        // Transforms only drop events, never add.
        (buffered, self.source.size_hint().1.map(|h| h + buffered))
    }
}

/// Applies `transforms` to a materialized trace (per-tenant event
/// order and tenant ids are preserved; same-millisecond ties created
/// by compression are re-normalized into the trace's canonical
/// `(at_ms, tenant)` order).
///
/// # Errors
///
/// Everything [`TransformedSource::new`] rejects.
pub fn apply(trace: &InvocationTrace, transforms: &[TraceTransform]) -> Result<InvocationTrace> {
    let source = TransformedSource::new(trace.source(), transforms.to_vec())?;
    Ok(InvocationTrace::from_source(source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::ExpandConfig;
    use crate::fixture;

    fn base_trace() -> InvocationTrace {
        fixture::dataset()
            .expand(ExpandConfig::new(11).minute_ms(1_000))
            .unwrap()
    }

    #[test]
    fn compress_divides_times_and_keeps_every_event() {
        let trace = base_trace();
        let compressed = apply(&trace, &[TraceTransform::Compress { divisor: 4 }]).unwrap();
        assert_eq!(compressed.len(), trace.len());
        for (orig, new) in trace.events().iter().zip(compressed.events()) {
            assert_eq!(new.at_ms, orig.at_ms / 4);
        }
    }

    #[test]
    fn streamed_compression_restores_canonical_tie_order() {
        use litmus_platform::{TenantId, TraceSource};
        use litmus_workloads::suite;

        // Input is canonically ordered by (at_ms, tenant); dividing by
        // 4 collapses both events onto 1 ms with the tenants in
        // *descending* order — the stream must re-sort the tie.
        let event = |at_ms: u64, tenant: u32| TraceEvent {
            at_ms,
            function: suite::by_name("auth-go").unwrap(),
            tenant: TenantId(tenant),
        };
        let trace = InvocationTrace::from_events(vec![event(4, 1), event(5, 0)]);
        let transforms = vec![TraceTransform::Compress { divisor: 4 }];
        let mut streamed = Vec::new();
        let mut source = TransformedSource::new(trace.source(), transforms.clone()).unwrap();
        while let Some(event) = source.next_event() {
            streamed.push(event);
        }
        assert_eq!(
            streamed.iter().map(|e| e.tenant).collect::<Vec<_>>(),
            vec![TenantId(0), TenantId(1)],
            "ties must come out in ascending tenant order"
        );
        assert_eq!(streamed, apply(&trace, &transforms).unwrap().events());

        // And at fixture scale: the streamed sequence is exactly the
        // materialized one, for a tie-heavy compression.
        let trace = base_trace();
        let transforms = vec![TraceTransform::Compress { divisor: 200 }];
        let materialized = apply(&trace, &transforms).unwrap();
        let mut source = TransformedSource::new(trace.source(), transforms).unwrap();
        let mut streamed = Vec::new();
        while let Some(event) = source.next_event() {
            streamed.push(event);
        }
        assert_eq!(streamed, materialized.events());
    }

    #[test]
    fn scale_rate_thins_deterministically() {
        let trace = base_trace();
        let half = |seed| {
            apply(
                &trace,
                &[TraceTransform::ScaleRate {
                    keep_fraction: 0.5,
                    seed,
                }],
            )
            .unwrap()
        };
        let a = half(1);
        assert_eq!(a, half(1), "same seed, same survivors");
        assert_ne!(a, half(2), "different seed, different survivors");
        let ratio = a.len() as f64 / trace.len() as f64;
        assert!((0.4..0.6).contains(&ratio), "kept {ratio:.2}");
        // Extremes.
        assert_eq!(
            apply(
                &trace,
                &[TraceTransform::ScaleRate {
                    keep_fraction: 1.0,
                    seed: 9
                }]
            )
            .unwrap(),
            trace
        );
        assert!(apply(
            &trace,
            &[TraceTransform::ScaleRate {
                keep_fraction: 0.0,
                seed: 9
            }]
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn subsample_keeps_exactly_the_listed_tenants() {
        let trace = base_trace();
        let keep = vec![TenantId(0), TenantId(3)];
        let sampled = apply(
            &trace,
            &[TraceTransform::Subsample {
                tenants: keep.clone(),
            }],
        )
        .unwrap();
        assert!(!sampled.is_empty());
        assert!(sampled.events().iter().all(|e| keep.contains(&e.tenant)));
        let expected = trace
            .events()
            .iter()
            .filter(|e| keep.contains(&e.tenant))
            .count();
        assert_eq!(sampled.len(), expected);
    }

    #[test]
    fn window_short_circuits_past_its_end() {
        use litmus_platform::{TenantId, TraceSource};
        use litmus_workloads::suite;

        /// Counts how many events the chain actually pulls.
        struct CountingSource {
            next_at: u64,
            pulled: u64,
        }
        impl TraceSource for CountingSource {
            fn next_event(&mut self) -> Option<TraceEvent> {
                // An endless time-ordered stream: without the window
                // short-circuit this test would never finish.
                let at_ms = self.next_at;
                self.next_at += 10;
                self.pulled += 1;
                Some(TraceEvent {
                    at_ms,
                    function: suite::by_name("auth-go").unwrap(),
                    tenant: TenantId(0),
                })
            }
        }

        let mut source = TransformedSource::new(
            CountingSource {
                next_at: 0,
                pulled: 0,
            },
            vec![TraceTransform::Window {
                start_ms: 100,
                end_ms: 200,
            }],
        )
        .unwrap();
        let mut yielded = 0;
        while source.next_event().is_some() {
            yielded += 1;
        }
        assert_eq!(yielded, 10, "events at 100, 110, …, 190");
        // 0..=200 step 10 → 21 pulls: everything up to and including
        // the first past-the-end event, nothing beyond.
        assert_eq!(source.source.pulled, 21);
        // Exhaustion is sticky.
        assert!(source.next_event().is_none());
        assert_eq!(source.source.pulled, 21);
    }

    #[test]
    fn window_slices_and_rebases() {
        let trace = base_trace();
        let windowed = apply(
            &trace,
            &[TraceTransform::Window {
                start_ms: 2_000,
                end_ms: 5_000,
            }],
        )
        .unwrap();
        assert!(!windowed.is_empty());
        assert!(windowed.events().iter().all(|e| e.at_ms < 3_000));
        let expected = trace
            .events()
            .iter()
            .filter(|e| (2_000..5_000).contains(&e.at_ms))
            .count();
        assert_eq!(windowed.len(), expected);
    }

    #[test]
    fn chains_apply_in_order() {
        let trace = base_trace();
        // Window-then-compress ≠ compress-then-window at these params;
        // check the former's composition explicitly.
        let chained = apply(
            &trace,
            &[
                TraceTransform::Window {
                    start_ms: 1_000,
                    end_ms: 9_000,
                },
                TraceTransform::Compress { divisor: 2 },
            ],
        )
        .unwrap();
        let windowed = apply(
            &trace,
            &[TraceTransform::Window {
                start_ms: 1_000,
                end_ms: 9_000,
            }],
        )
        .unwrap();
        let both = apply(&windowed, &[TraceTransform::Compress { divisor: 2 }]).unwrap();
        assert_eq!(chained, both);
    }

    #[test]
    fn degenerate_transforms_are_rejected() {
        let trace = base_trace();
        assert!(apply(&trace, &[TraceTransform::Compress { divisor: 0 }]).is_err());
        assert!(apply(
            &trace,
            &[TraceTransform::ScaleRate {
                keep_fraction: 1.5,
                seed: 0
            }]
        )
        .is_err());
        assert!(apply(
            &trace,
            &[TraceTransform::Window {
                start_ms: 5,
                end_ms: 5
            }]
        )
        .is_err());
    }
}
