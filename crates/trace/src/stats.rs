//! Trace characterization: the workload-shape numbers that decide
//! whether a fairness result generalizes — inter-arrival variability,
//! burstiness, tenant skew and per-tenant concurrency envelopes —
//! computed in one streaming pass.

use std::collections::BTreeMap;
use std::fmt;

use litmus_platform::{InvocationTrace, TenantId, TraceSource};

/// One tenant's contribution to the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantEnvelope {
    /// The tenant.
    pub tenant: TenantId,
    /// Their invocation count.
    pub events: usize,
    /// Their share of all invocations, in `[0, 1]`.
    pub share: f64,
    /// Most arrivals they put into any one window — the concurrency
    /// envelope a provider must provision for.
    pub peak_per_window: usize,
    /// Mean arrivals per window over the trace's span.
    pub mean_per_window: f64,
}

/// Shape statistics of a trace, computed in one pass over a
/// [`TraceSource`] (so arbitrarily long traces characterize in
/// constant memory per tenant).
///
/// # Examples
///
/// ```
/// use litmus_trace::{ExpandConfig, TraceStats};
///
/// let dataset = litmus_trace::fixture::dataset();
/// let source = dataset.source(ExpandConfig::new(7).minute_ms(500)).unwrap();
/// let stats = TraceStats::from_source(source, 500);
/// assert!(stats.events > 0);
/// println!("{stats}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total invocations.
    pub events: usize,
    /// First-to-last arrival span, ms.
    pub span_ms: u64,
    /// Window used for the concurrency envelopes, ms.
    pub window_ms: u64,
    /// Mean arrival rate over the span, per second.
    pub mean_rate_per_s: f64,
    /// Coefficient of variation (σ/μ) of the global inter-arrival
    /// gaps: ≈1 for Poisson traffic, >1 when bursty, <1 when paced.
    pub interarrival_cv: f64,
    /// Goh–Barabási burstiness index `(σ−μ)/(σ+μ)` of the gaps, in
    /// `(−1, 1)`: ≈0 for Poisson, →1 for heavy bursts, →−1 for a
    /// metronome.
    pub burstiness: f64,
    /// Gini coefficient of the tenants' invocation shares: 0 when all
    /// tenants invoke equally, →1 when one tenant dominates.
    pub tenant_gini: f64,
    /// Per-tenant envelopes, ascending by tenant id.
    pub tenants: Vec<TenantEnvelope>,
}

impl TraceStats {
    /// Characterizes a streaming source using `window_ms` (minimum 1)
    /// tumbling windows for the concurrency envelopes.
    pub fn from_source(mut source: impl TraceSource, window_ms: u64) -> Self {
        let window_ms = window_ms.max(1);
        struct TenantAcc {
            events: usize,
            window: u64,
            in_window: usize,
            peak: usize,
        }
        let mut tenants: BTreeMap<TenantId, TenantAcc> = BTreeMap::new();
        let mut events = 0usize;
        let mut first_at = 0u64;
        let mut last_at = 0u64;
        // Welford accumulation over inter-arrival gaps.
        let mut prev_at: Option<u64> = None;
        let mut gaps = 0usize;
        let mut gap_mean = 0.0f64;
        let mut gap_m2 = 0.0f64;

        while let Some(event) = source.next_event() {
            if events == 0 {
                first_at = event.at_ms;
            }
            events += 1;
            last_at = event.at_ms;
            if let Some(prev) = prev_at {
                let gap = event.at_ms.saturating_sub(prev) as f64;
                gaps += 1;
                let delta = gap - gap_mean;
                gap_mean += delta / gaps as f64;
                gap_m2 += delta * (gap - gap_mean);
            }
            prev_at = Some(event.at_ms);

            let window = event.at_ms / window_ms;
            let acc = tenants.entry(event.tenant).or_insert(TenantAcc {
                events: 0,
                window,
                in_window: 0,
                peak: 0,
            });
            acc.events += 1;
            if acc.window != window {
                acc.window = window;
                acc.in_window = 0;
            }
            acc.in_window += 1;
            acc.peak = acc.peak.max(acc.in_window);
        }

        let span_ms = last_at.saturating_sub(first_at);
        let (interarrival_cv, burstiness) = if gaps > 1 && gap_mean > 0.0 {
            let sigma = (gap_m2 / gaps as f64).sqrt();
            (sigma / gap_mean, (sigma - gap_mean) / (sigma + gap_mean))
        } else {
            (0.0, 0.0)
        };
        let windows_spanned = span_ms / window_ms + 1;

        let counts: Vec<usize> = tenants.values().map(|acc| acc.events).collect();
        let tenant_gini = gini(&counts);
        let tenants: Vec<TenantEnvelope> = tenants
            .into_iter()
            .map(|(tenant, acc)| TenantEnvelope {
                tenant,
                events: acc.events,
                share: acc.events as f64 / events.max(1) as f64,
                peak_per_window: acc.peak,
                mean_per_window: acc.events as f64 / windows_spanned as f64,
            })
            .collect();

        TraceStats {
            events,
            span_ms,
            window_ms,
            mean_rate_per_s: if span_ms == 0 {
                0.0
            } else {
                events as f64 / (span_ms as f64 / 1000.0)
            },
            interarrival_cv,
            burstiness,
            tenant_gini,
            tenants,
        }
    }

    /// Characterizes a materialized trace.
    pub fn from_trace(trace: &InvocationTrace, window_ms: u64) -> Self {
        TraceStats::from_source(trace.source(), window_ms)
    }
}

/// Gini coefficient of non-negative counts (0 for uniform shares).
fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if counts.len() < 2 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n - 1.0) * x as f64)
        .sum();
    weighted / (n * total as f64)
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} invocations over {:.1} s ({:.1}/s), {} tenants",
            self.events,
            self.span_ms as f64 / 1000.0,
            self.mean_rate_per_s,
            self.tenants.len()
        )?;
        writeln!(
            f,
            "inter-arrival CV {:.2}, burstiness {:+.2}, tenant Gini {:.2}",
            self.interarrival_cv, self.burstiness, self.tenant_gini
        )?;
        for envelope in &self.tenants {
            writeln!(
                f,
                "  {}: {:>6} events ({:>5.1}%), peak {:>4}/window (mean {:.1})",
                envelope.tenant,
                envelope.events,
                envelope.share * 100.0,
                envelope.peak_per_window,
                envelope.mean_per_window
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_platform::TraceEvent;
    use litmus_workloads::suite;

    fn event(at_ms: u64, tenant: u32) -> TraceEvent {
        TraceEvent {
            at_ms,
            function: suite::by_name("auth-go").unwrap(),
            tenant: TenantId(tenant),
        }
    }

    #[test]
    fn metronome_vs_bursty_shapes_separate() {
        // Perfectly paced arrivals: CV ≈ 0, burstiness → −1.
        let paced: Vec<TraceEvent> = (0..200).map(|i| event(i * 100, 0)).collect();
        let paced = TraceStats::from_trace(&InvocationTrace::from_events(paced), 1_000);
        assert!(paced.interarrival_cv < 0.05, "cv {}", paced.interarrival_cv);
        assert!(paced.burstiness < -0.9, "b {}", paced.burstiness);

        // All mass in tight clumps: CV well above 1, burstiness > 0.
        let mut clumped = Vec::new();
        for clump in 0..20 {
            for i in 0..10 {
                clumped.push(event(clump * 5_000 + i, 0));
            }
        }
        let clumped = TraceStats::from_trace(&InvocationTrace::from_events(clumped), 1_000);
        assert!(
            clumped.interarrival_cv > 1.5,
            "cv {}",
            clumped.interarrival_cv
        );
        assert!(clumped.burstiness > 0.2, "b {}", clumped.burstiness);
        assert!(clumped.burstiness > paced.burstiness);
    }

    #[test]
    fn tenant_skew_shows_in_gini_and_envelopes() {
        // Tenant 0: 300 events; tenant 1: 20; tenant 2: 20.
        let mut events = Vec::new();
        for i in 0..300u64 {
            events.push(event(i * 10, 0));
        }
        for i in 0..20u64 {
            events.push(event(i * 150, 1));
            events.push(event(i * 150 + 5, 2));
        }
        let stats = TraceStats::from_trace(&InvocationTrace::from_events(events), 500);
        assert_eq!(stats.events, 340);
        assert_eq!(stats.tenants.len(), 3);
        assert!(stats.tenant_gini > 0.4, "gini {}", stats.tenant_gini);
        let t0 = &stats.tenants[0];
        assert_eq!(t0.tenant, TenantId(0));
        assert_eq!(t0.events, 300);
        assert!(t0.share > 0.85);
        // 500 ms windows at one event per 10 ms → 50 per window.
        assert_eq!(t0.peak_per_window, 50);
        // Equal-share tenants give Gini 0.
        let even: Vec<TraceEvent> = (0..100).map(|i| event(i * 7, (i % 4) as u32)).collect();
        let even = TraceStats::from_trace(&InvocationTrace::from_events(even), 1_000);
        assert!(even.tenant_gini < 1e-9);
    }

    #[test]
    fn degenerate_traces_do_not_panic() {
        let empty = TraceStats::from_trace(&InvocationTrace::from_events(Vec::new()), 1_000);
        assert_eq!(empty.events, 0);
        assert_eq!(empty.mean_rate_per_s, 0.0);
        assert!(empty.tenants.is_empty());
        assert_eq!(empty.tenant_gini, 0.0);

        let single = TraceStats::from_trace(&InvocationTrace::from_events(vec![event(5, 1)]), 0);
        assert_eq!(single.events, 1);
        assert_eq!(single.window_ms, 1, "window clamps to ≥ 1");
        assert_eq!(single.interarrival_cv, 0.0);
    }
}
