//! Deterministic, seeded expansion of minute-bucket counts into
//! per-invocation [`TraceEvent`]s, streamed in time order.
//!
//! The Azure trace records *how many* invocations each function saw
//! per minute plus *distribution sketches* of duration and memory; the
//! expander turns that into a concrete multi-tenant workload the
//! simulator can serve:
//!
//! * **apps → [`TenantId`]** — every distinct `owner/app` pair becomes
//!   one billing tenant (memory — and billing — are per app in the
//!   real platform), numbered in sorted-key order so the mapping is
//!   independent of CSV row order;
//! * **functions → [`TenantClass`]** — each function is classified by
//!   its mean duration and its app's mean allocated memory
//!   ([`TenantClass::classify`]), selecting the Table-1 workload pool
//!   whose resource character matches;
//! * **counts → arrivals** — each minute's count is placed inside the
//!   minute either evenly or as a Poisson batch
//!   ([`IntraMinute`]), from an RNG stream keyed by
//!   `(seed, function, minute)` so slicing or subsampling one stream
//!   never perturbs another;
//! * **duration sketch → body** — each invocation draws a duration
//!   quantile from the function's percentile sketch; the quantile's
//!   *rank* picks the benchmark from the class pool (sorted by solo
//!   duration), so a function's fast tail runs the pool's short bodies
//!   and its slow tail the long ones. The simulator's calibrated
//!   bodies stand in for wall-clock durations — what's preserved is
//!   each function's duration *spread*, mapped onto the pool's spread.

use std::collections::BTreeMap;

use litmus_platform::{ConcatSource, InvocationTrace, TenantId, TraceEvent, TraceSource};
use litmus_workloads::suite::{self, TenantClass};
use litmus_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::azure::{AzureDataset, AzureFunction};
use crate::error::TraceError;
use crate::sketch::PercentileSketch;
use crate::Result;

/// How a minute's invocation count is placed inside the minute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraMinute {
    /// Evenly spaced on a centered grid — the smoothest arrival stream
    /// the counts admit.
    Even,
    /// Independent uniform offsets — the order statistics of a Poisson
    /// process conditioned on the minute's count, so arrivals clump
    /// the way memoryless traffic does. The default.
    #[default]
    Poisson,
}

/// Configuration of a trace expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandConfig {
    /// Master seed; every `(function, minute)` pair derives its own
    /// independent stream from it.
    pub seed: u64,
    /// Intra-minute placement of each minute's count.
    pub placement: IntraMinute,
    /// Simulated length of one trace minute, ms. The real trace's
    /// minutes are 60 000 ms; experiments usually compress (a 15-minute
    /// fixture at `minute_ms = 400` replays in 6 simulated seconds).
    pub minute_ms: u64,
}

impl ExpandConfig {
    /// Poisson placement at real-time scale (60 000 ms minutes).
    pub fn new(seed: u64) -> Self {
        ExpandConfig {
            seed,
            placement: IntraMinute::default(),
            minute_ms: 60_000,
        }
    }

    /// Sets the intra-minute placement.
    pub fn placement(mut self, placement: IntraMinute) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the simulated minute length, ms (validated ≥ 1 when the
    /// source is built).
    pub fn minute_ms(mut self, ms: u64) -> Self {
        self.minute_ms = ms;
        self
    }
}

/// One `owner/app` pair's tenant assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAssignment {
    /// The assigned billing tenant.
    pub tenant: TenantId,
    /// Anonymized owning-customer hash.
    pub owner: String,
    /// Anonymized application hash.
    pub app: String,
}

/// Classifies one trace function into the tenant archetype whose
/// workload pool matches its resource character: its mean duration and
/// its app's mean allocated memory (zero when the trace has no memory
/// row for the app), through [`TenantClass::classify`].
///
/// This is the single classification path: the expander calls the same
/// private rule (`classify_with_memory`) with a pre-built per-app
/// lookup instead of the per-call [`AzureDataset::memory_of`] scan.
pub fn classify_function(dataset: &AzureDataset, function: &AzureFunction) -> TenantClass {
    classify_with_memory(
        function,
        dataset
            .memory_of(&function.owner, &function.app)
            .map(|app| app.mean_allocated_mb),
    )
}

/// The classification rule proper: mean duration plus the app's mean
/// allocated memory (`None` — no memory row — counts as zero).
fn classify_with_memory(function: &AzureFunction, memory_mb: Option<f64>) -> TenantClass {
    TenantClass::classify(function.mean_duration_ms, memory_mb.unwrap_or(0.0))
}

/// FNV-1a, the per-function seed-stream key (stable across runs and
/// platforms, unlike `std`'s `DefaultHasher`).
fn fnv1a64(parts: [&str; 3]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for part in parts {
        for byte in part.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separator so ("ab", "c") and ("a", "bc") differ.
        hash ^= 0x1F;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One function's expansion plan.
#[derive(Debug, Clone)]
struct FunctionPlan {
    tenant: TenantId,
    key: u64,
    counts: Vec<u32>,
    sketch: PercentileSketch,
    /// The class pool, ascending by solo body duration, so a duration
    /// quantile rank indexes straight into it.
    pool: Vec<Benchmark>,
}

/// Streaming [`TraceSource`] over an expanded Azure trace: minutes are
/// expanded one at a time (memory stays proportional to the busiest
/// minute, never the trace), each minute's events sorted into the
/// canonical `(at_ms, tenant)` order — so streaming is bit-identical
/// to materializing via [`AzureDataset::expand`] at the same seed.
#[derive(Debug, Clone)]
pub struct AzureReplaySource {
    plans: Vec<FunctionPlan>,
    assignments: Vec<TenantAssignment>,
    seed: u64,
    placement: IntraMinute,
    minute_ms: u64,
    minutes: usize,
    next_minute: usize,
    buffer: Vec<TraceEvent>,
    cursor: usize,
    remaining: usize,
}

/// Builds the canonical `owner/app` → [`TenantId`] assignment over a
/// set of trace days: the union of every day's app keys, ascending,
/// numbered densely from zero. With a single day this is exactly the
/// mapping [`AzureReplaySource::new`] derives; across days it is the
/// *shared* mapping that keeps a tenant's identity stable for the
/// whole replay ([`multi_day_source`] uses it for that).
pub fn union_assignments(days: &[AzureDataset]) -> Vec<TenantAssignment> {
    let mut app_keys: Vec<(String, String)> = days
        .iter()
        .flat_map(|day| {
            day.functions()
                .iter()
                .map(|f| (f.owner.clone(), f.app.clone()))
        })
        .collect();
    app_keys.sort();
    app_keys.dedup();
    app_keys
        .into_iter()
        .enumerate()
        .map(|(idx, (owner, app))| TenantAssignment {
            tenant: TenantId(idx as u32),
            owner,
            app,
        })
        .collect()
}

/// Streams `days` back to back as one [`ConcatSource`]: each day
/// expands under `config` (so each day has the same compressed minute
/// length) and starts where the previous day's span ends, with one
/// tenant map shared across days — an app keeps its [`TenantId`] for
/// the whole replay even when it is silent for days. Nothing is
/// materialized; memory tracks the busiest minute of the busiest day.
///
/// # Errors
///
/// [`TraceError::InvalidConfig`] when `days` is empty or
/// `config.minute_ms` is zero.
pub fn multi_day_source(
    days: &[AzureDataset],
    config: ExpandConfig,
) -> Result<ConcatSource<AzureReplaySource>> {
    if days.is_empty() {
        return Err(TraceError::InvalidConfig(
            "multi-day replay needs at least one day",
        ));
    }
    let assignments = union_assignments(days);
    let mut parts = Vec::with_capacity(days.len());
    let mut offset = 0u64;
    for day in days {
        let source = AzureReplaySource::with_tenants(day, config, assignments.clone())?;
        let span = source.span_ms();
        parts.push((offset, source));
        offset += span;
    }
    Ok(ConcatSource::new(parts).expect("day offsets ascend by construction")) // lint:allow(panic-in-lib): offsets are i*day_ms for ascending i, strictly increasing
}

impl AzureReplaySource {
    /// Builds the streaming expansion of `dataset` under `config`,
    /// deriving the tenant map from the dataset's own apps.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidConfig`] when `config.minute_ms` is zero.
    pub fn new(dataset: &AzureDataset, config: ExpandConfig) -> Result<Self> {
        Self::with_tenants(
            dataset,
            config,
            union_assignments(std::slice::from_ref(dataset)),
        )
    }

    /// Builds the streaming expansion with an externally supplied
    /// tenant map — how multi-day replays keep one app on one
    /// [`TenantId`] across day boundaries. `assignments` may cover
    /// apps this dataset never invokes (other days'), but must cover
    /// every app it does.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidConfig`] when `config.minute_ms` is zero,
    /// when `assignments` repeats an app, or when one of the dataset's
    /// apps is missing from it.
    pub fn with_tenants(
        dataset: &AzureDataset,
        config: ExpandConfig,
        assignments: Vec<TenantAssignment>,
    ) -> Result<Self> {
        if config.minute_ms == 0 {
            return Err(TraceError::InvalidConfig("minute_ms must be at least 1"));
        }

        // Sorted lookup over the provided map (sorted already when it
        // came from `union_assignments`; re-sorting is cheap and makes
        // caller-built maps order-insensitive).
        let mut lookup: Vec<(&str, &str, TenantId)> = assignments
            .iter()
            .map(|a| (a.owner.as_str(), a.app.as_str(), a.tenant))
            .collect();
        lookup.sort();
        if lookup
            .windows(2)
            .any(|pair| (pair[0].0, pair[0].1) == (pair[1].0, pair[1].1))
        {
            return Err(TraceError::InvalidConfig(
                "tenant assignments repeat an app",
            ));
        }
        let tenant_of = |owner: &str, app: &str| -> Result<TenantId> {
            lookup
                .binary_search_by(|probe| (probe.0, probe.1).cmp(&(owner, app)))
                .map(|idx| lookup[idx].2)
                .map_err(|_| {
                    TraceError::InvalidConfig("dataset app missing from tenant assignments")
                })
        };

        // One lookup table per join, built once: the full dataset has
        // tens of thousands of apps and hundreds of thousands of
        // functions per day, so per-function linear scans would make
        // ingestion quadratic.
        let memory_by_app: BTreeMap<(&str, &str), f64> = dataset
            .apps()
            .iter()
            .map(|app| {
                (
                    (app.owner.as_str(), app.app.as_str()),
                    app.mean_allocated_mb,
                )
            })
            .collect();
        let mut pool_by_class: BTreeMap<TenantClass, Vec<Benchmark>> = BTreeMap::new();
        for class in TenantClass::ALL {
            let mut pool = suite::tenant_pool(class);
            pool.sort_by(|a, b| {
                a.body_ms()
                    .total_cmp(&b.body_ms())
                    .then_with(|| a.name().cmp(b.name()))
            });
            pool_by_class.insert(class, pool);
        }

        // Plans in the dataset's canonical key order: expansion order
        // (and therefore tie-breaking among same-millisecond arrivals)
        // is canonical, not file order.
        let mut remaining = 0usize;
        let mut plans = Vec::with_capacity(dataset.functions().len());
        for function in dataset.functions() {
            let memory_mb = memory_by_app
                .get(&(function.owner.as_str(), function.app.as_str()))
                .copied();
            let class = classify_with_memory(function, memory_mb);
            remaining += function.total_invocations() as usize;
            plans.push(FunctionPlan {
                tenant: tenant_of(&function.owner, &function.app)?,
                key: fnv1a64([&function.owner, &function.app, &function.function]),
                counts: function.counts.clone(),
                sketch: function.duration_ms.clone(),
                pool: pool_by_class[&class].clone(),
            });
        }

        Ok(AzureReplaySource {
            plans,
            assignments,
            seed: config.seed,
            placement: config.placement,
            minute_ms: config.minute_ms,
            minutes: dataset.minutes(),
            next_minute: 0,
            buffer: Vec::new(),
            cursor: 0,
            remaining,
        })
    }

    /// The `owner/app` → [`TenantId`] mapping this source expands
    /// under (ascending by tenant when it came from
    /// [`AzureReplaySource::new`] or [`union_assignments`]).
    pub fn assignments(&self) -> &[TenantAssignment] {
        &self.assignments
    }

    /// Simulated length of the whole trace, ms.
    pub fn span_ms(&self) -> u64 {
        self.minutes as u64 * self.minute_ms
    }

    fn expand_minute(&mut self, minute: usize) {
        self.buffer.clear();
        self.cursor = 0;
        let base = minute as u64 * self.minute_ms;
        for plan in &self.plans {
            let count = plan.counts.get(minute).copied().unwrap_or(0) as u64;
            if count == 0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ plan.key ^ (minute as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            for i in 0..count {
                let offset_ms = match self.placement {
                    IntraMinute::Even => (self.minute_ms * (2 * i + 1)) / (2 * count),
                    IntraMinute::Poisson => {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        (u * self.minute_ms as f64) as u64
                    }
                };
                let (q, _duration_ms) = plan.sketch.sample(&mut rng);
                let idx = ((q * plan.pool.len() as f64) as usize).min(plan.pool.len() - 1);
                self.buffer.push(TraceEvent {
                    at_ms: base + offset_ms.min(self.minute_ms - 1),
                    function: plan.pool[idx].clone(),
                    tenant: plan.tenant,
                });
            }
        }
        self.buffer.sort_by_key(|e| (e.at_ms, e.tenant));
    }
}

impl TraceSource for AzureReplaySource {
    fn next_event(&mut self) -> Option<TraceEvent> {
        while self.cursor >= self.buffer.len() {
            if self.next_minute >= self.minutes {
                return None;
            }
            let minute = self.next_minute;
            self.next_minute += 1;
            self.expand_minute(minute);
        }
        let event = self.buffer[self.cursor].clone();
        self.cursor += 1;
        self.remaining -= 1;
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl AzureDataset {
    /// Streaming expansion of this dataset — see [`AzureReplaySource`].
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidConfig`] for a zero `minute_ms`.
    pub fn source(&self, config: ExpandConfig) -> Result<AzureReplaySource> {
        AzureReplaySource::new(self, config)
    }

    /// Fully materialized expansion: [`AzureDataset::source`] collected
    /// into an [`InvocationTrace`]. Bit-identical to streaming the
    /// source through a replay at the same seed.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidConfig`] for a zero `minute_ms`.
    pub fn expand(&self, config: ExpandConfig) -> Result<InvocationTrace> {
        Ok(InvocationTrace::from_source(self.source(config)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    fn config() -> ExpandConfig {
        ExpandConfig::new(7).minute_ms(400)
    }

    #[test]
    fn expansion_is_deterministic_and_counts_match() {
        let dataset = fixture::dataset();
        let a = dataset.expand(config()).unwrap();
        let b = dataset.expand(config()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, dataset.total_invocations());
        // Every tenant appears, numbered densely from zero.
        let source = dataset.source(config()).unwrap();
        assert_eq!(source.assignments().len(), a.tenants().len());
        for (idx, assignment) in source.assignments().iter().enumerate() {
            assert_eq!(assignment.tenant, TenantId(idx as u32));
        }
        // A different seed moves arrivals.
        let c = dataset.expand(ExpandConfig::new(8).minute_ms(400)).unwrap();
        assert_ne!(a, c);
        assert_eq!(a.len(), c.len(), "seed changes placement, not counts");
    }

    #[test]
    fn streaming_yields_exactly_the_materialized_trace() {
        let dataset = fixture::dataset();
        let materialized = dataset.expand(config()).unwrap();
        let mut source = dataset.source(config()).unwrap();
        assert_eq!(
            source.size_hint(),
            (materialized.len(), Some(materialized.len()))
        );
        let mut streamed = Vec::new();
        while let Some(event) = source.next_event() {
            streamed.push(event);
        }
        assert_eq!(streamed, materialized.events());
        assert_eq!(source.size_hint(), (0, Some(0)));
    }

    #[test]
    fn events_stay_inside_their_minute() {
        let dataset = fixture::dataset();
        for placement in [IntraMinute::Even, IntraMinute::Poisson] {
            let cfg = ExpandConfig::new(3).minute_ms(250).placement(placement);
            let mut source = dataset.source(cfg).unwrap();
            let span = source.span_ms();
            // Reconstruct per-minute totals and compare to the counts.
            let mut per_minute = vec![0u64; dataset.minutes()];
            while let Some(event) = source.next_event() {
                assert!(event.at_ms < span);
                per_minute[(event.at_ms / 250) as usize] += 1;
            }
            for (minute, total) in per_minute.iter().enumerate() {
                let expected: u64 = dataset
                    .functions()
                    .iter()
                    .map(|f| f.counts[minute] as u64)
                    .sum();
                assert_eq!(*total, expected, "minute {minute} ({placement:?})");
            }
        }
    }

    #[test]
    fn even_placement_spreads_the_minute() {
        let dataset = fixture::dataset();
        let cfg = ExpandConfig::new(1)
            .minute_ms(60_000)
            .placement(IntraMinute::Even);
        let trace = dataset.expand(cfg).unwrap();
        // The telemetry function alone puts ~120 events/minute on a
        // centered grid; the busiest half-minute can't hold much more
        // than half the events.
        let first_minute: Vec<u64> = trace
            .events()
            .iter()
            .filter(|e| e.at_ms < 60_000)
            .map(|e| e.at_ms)
            .collect();
        let early = first_minute.iter().filter(|&&at| at < 30_000).count();
        let late = first_minute.len() - early;
        assert!(
            early.abs_diff(late) * 10 < first_minute.len(),
            "even placement skewed: {early} vs {late}"
        );
    }

    #[test]
    fn classes_follow_duration_and_memory() {
        let dataset = fixture::dataset();
        let class_of = |name: &str| {
            let f = dataset
                .functions()
                .iter()
                .find(|f| f.function == name)
                .unwrap();
            classify_function(&dataset, f)
        };
        assert_eq!(class_of("auth"), TenantClass::Interactive);
        assert_eq!(class_of("telemetry"), TenantClass::Interactive);
        assert_eq!(class_of("pagerank"), TenantClass::Analytics);
        assert_eq!(class_of("infer"), TenantClass::Analytics);
        assert_eq!(class_of("resize"), TenantClass::Batch);
        // No memory row → classified on duration alone.
        assert_eq!(class_of("nightly"), TenantClass::Batch);
    }

    #[test]
    fn zero_minute_ms_is_rejected() {
        let dataset = fixture::dataset();
        assert!(matches!(
            dataset.source(ExpandConfig::new(1).minute_ms(0)),
            Err(TraceError::InvalidConfig(_))
        ));
    }

    #[test]
    fn multi_day_concatenation_offsets_each_day_by_its_span() {
        let day = fixture::dataset();
        let days = vec![day.clone(), day.clone()];
        let mut source = multi_day_source(&days, config()).unwrap();
        assert_eq!(source.parts(), 2);
        let single = day.expand(config()).unwrap();
        assert_eq!(
            source.size_hint(),
            (single.len() * 2, Some(single.len() * 2))
        );
        let mut events = Vec::new();
        while let Some(event) = source.next_event() {
            events.push(event);
        }
        assert_eq!(events.len(), single.len() * 2);
        // Day one streams exactly the single-day expansion; day two is
        // the same expansion (same seed, same per-function streams)
        // shifted by one day span.
        let span = day.minutes() as u64 * 400;
        assert_eq!(&events[..single.len()], single.events());
        for (a, b) in single.events().iter().zip(&events[single.len()..]) {
            assert_eq!(b.at_ms, a.at_ms + span);
            assert_eq!(b.tenant, a.tenant);
            assert_eq!(b.function, a.function);
        }
    }

    #[test]
    fn multi_day_tenant_map_is_shared_across_days() {
        use crate::AzureDataset;

        let full = fixture::dataset();
        // Day two drops the webshop app entirely (functions and
        // memory), leaving key gaps a per-day numbering would fill
        // differently.
        let keep = |csv: &str, col: usize| {
            let mut lines = csv.lines();
            let mut out = String::from(lines.next().unwrap());
            out.push('\n');
            for line in lines {
                if line.split(',').nth(col) != Some("webshop") {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out
        };
        let partial = AzureDataset::from_csv(
            &keep(fixture::INVOCATIONS_CSV, 1),
            &keep(fixture::DURATIONS_CSV, 1),
            &keep(fixture::MEMORY_CSV, 1),
        )
        .unwrap();

        let days = vec![full.clone(), partial.clone()];
        let assignments = union_assignments(&days);
        assert_eq!(assignments.len(), 6, "union covers every app once");
        let mut source = multi_day_source(&days, config()).unwrap();
        let span = full.minutes() as u64 * 400;
        // Events from day two carry the *shared* tenant ids: exactly
        // the ids day one used for the surviving apps.
        let day_one_tenants: std::collections::HashSet<TenantId> = full
            .expand(config())
            .unwrap()
            .events()
            .iter()
            .map(|e| e.tenant)
            .collect();
        let webshop = assignments
            .iter()
            .find(|a| a.app == "webshop")
            .expect("union keeps day-one-only apps");
        let mut saw_day_two = false;
        while let Some(event) = source.next_event() {
            if event.at_ms >= span {
                saw_day_two = true;
                assert_ne!(event.tenant, webshop.tenant);
                assert!(day_one_tenants.contains(&event.tenant));
            }
        }
        assert!(saw_day_two);

        // A map that misses one of the dataset's apps is rejected.
        let partial_assignments = union_assignments(std::slice::from_ref(&partial));
        assert!(matches!(
            AzureReplaySource::with_tenants(&full, config(), partial_assignments),
            Err(TraceError::InvalidConfig(_))
        ));
        // As is a map that repeats an app.
        let mut doubled = union_assignments(std::slice::from_ref(&full));
        doubled.push(doubled[0].clone());
        assert!(matches!(
            AzureReplaySource::with_tenants(&full, config(), doubled),
            Err(TraceError::InvalidConfig(_))
        ));
    }
}
