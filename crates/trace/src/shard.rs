//! Shard discovery and streaming line sources for on-disk trace
//! directories.
//!
//! The published Azure Functions 2019 download splits every CSV family
//! into per-day shards (`invocations_per_function_md.anon.d01.csv`,
//! `function_durations_percentiles.anon.d01.csv`,
//! `app_memory_percentiles.anon.d01.csv`, …). Discovery is by family
//! *stem*: any `<stem>*.csv` in the directory belongs to the family,
//! so both the repo's unsharded fixture names and the real download's
//! names match without renaming. Shards are consumed in ascending
//! file-name order with the first shard's header authoritative — and
//! because [`crate::AzureDataset`] holds rows in canonical key order,
//! *any* partition of the same rows across shards parses to the
//! identical dataset.
//!
//! Parsing streams through the [`LineSource`] trait: [`ShardLines`]
//! chains per-shard readers, holding **one shard's text at a time**,
//! so peak ingest memory is the largest shard rather than the whole
//! family (a real day's invocations family is multi-GB). The line
//! stream it yields is byte-identical to reading every shard into one
//! merged text first (asserted in tests against the retired merged
//! path), including the merged-stream line numbering.
//!
//! One caveat: parse-error line numbers refer to the *merged* row
//! stream, not to a position inside an individual shard file.

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::azure::parse_error;
use crate::error::TraceError;
use crate::Result;

/// File-name stem of the invocations family
/// (`invocations_per_function*.csv`).
pub(crate) const INVOCATIONS_STEM: &str = "invocations_per_function";
/// File-name stem of the durations family (`function_durations*.csv`).
pub(crate) const DURATIONS_STEM: &str = "function_durations";
/// File-name stem of the memory family (`app_memory*.csv`).
pub(crate) const MEMORY_STEM: &str = "app_memory";

/// Finds `family`'s shard files in `dir`: every regular file named
/// `<stem>*.csv`, sorted by file name so the merge order is
/// deterministic regardless of directory-listing order.
pub(crate) fn discover(dir: &Path, family: &'static str, stem: &str) -> Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        // Files only (symlinks followed): a stray directory named like
        // a shard must not turn into an unreadable "shard".
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(stem) && name.ends_with(".csv") {
            paths.push(entry.path());
        }
    }
    if paths.is_empty() {
        return Err(TraceError::MissingFamily {
            family,
            dir: dir.display().to_string(),
        });
    }
    paths.sort();
    Ok(paths)
}

/// A streaming supplier of one CSV family's non-blank data lines —
/// `\r`-trimmed, with the 1-based line numbers they hold in the
/// family's merged row stream. The single front door the parsers pull
/// rows through, so one parser serves both in-memory texts
/// ([`TextLines`]) and shard chains ([`ShardLines`]).
pub(crate) trait LineSource {
    /// The next non-blank line, or `None` once the family is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// I/O and shard-structure failures (empty shard, header drift)
    /// from sources that read lazily.
    fn next_line(&mut self) -> Result<Option<(usize, &str)>>;
}

/// [`LineSource`] over one in-memory CSV text.
pub(crate) struct TextLines<'t> {
    lines: std::str::Lines<'t>,
    line_no: usize,
}

impl<'t> TextLines<'t> {
    pub(crate) fn new(text: &'t str) -> Self {
        TextLines {
            lines: text.lines(),
            line_no: 0,
        }
    }
}

impl LineSource for TextLines<'_> {
    fn next_line(&mut self) -> Result<Option<(usize, &str)>> {
        for line in self.lines.by_ref() {
            self.line_no += 1;
            let line = line.trim_end_matches('\r');
            if !line.trim().is_empty() {
                return Ok(Some((self.line_no, line)));
            }
        }
        Ok(None)
    }
}

/// Splits `text` into its header line (first non-blank line, `\r`
/// trimmed) and everything after it.
fn split_header(text: &str) -> Option<(&str, &str)> {
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let end = offset + line.len();
        let trimmed = line.trim_end_matches('\n').trim_end_matches('\r');
        if trimmed.trim().is_empty() {
            offset = end;
            continue;
        }
        return Some((trimmed, &text[end..]));
    }
    None
}

/// [`LineSource`] chaining a family's shard files: shards are read
/// lazily one at a time (peak memory is one shard), the first shard's
/// header is authoritative and every later shard must repeat it
/// exactly, contributing only its data rows. The yielded line stream —
/// content and numbering — is byte-identical to concatenating the
/// shards into one merged text and reading that.
pub(crate) struct ShardLines {
    family: &'static str,
    paths: std::vec::IntoIter<PathBuf>,
    /// First shard's path, for header-mismatch messages.
    first_path: Option<PathBuf>,
    /// First shard's header, which every later shard must repeat.
    header: Option<String>,
    /// The one shard held in memory right now.
    current: String,
    /// Byte cursor into `current` (starts past the header for every
    /// shard but the first).
    offset: usize,
    /// Merged-stream line numbering, continuing across shards.
    line_no: usize,
}

impl ShardLines {
    /// Chains `paths` (already discovery-sorted) as `family`'s row
    /// stream. No file is read until the first pull.
    pub(crate) fn new(paths: Vec<PathBuf>, family: &'static str) -> Self {
        ShardLines {
            family,
            paths: paths.into_iter(),
            first_path: None,
            header: None,
            current: String::new(),
            offset: 0,
            line_no: 0,
        }
    }

    /// Scans `current` for its next line: every raw line is counted
    /// (that is the merged numbering), blank lines are skipped, and
    /// the returned range is `\r`-trimmed.
    fn scan_current(&mut self) -> Option<(usize, Range<usize>)> {
        while self.offset < self.current.len() {
            let rest = &self.current[self.offset..];
            let (line_len, advance) = match rest.find('\n') {
                Some(idx) => (idx, idx + 1),
                None => (rest.len(), rest.len()),
            };
            let start = self.offset;
            self.offset += advance;
            self.line_no += 1;
            let line = rest[..line_len].trim_end_matches('\r');
            if !line.trim().is_empty() {
                return Some((self.line_no, start..start + line.len()));
            }
        }
        None
    }

    /// Loads the next shard, replacing the current one; `false` when
    /// the chain is exhausted.
    fn advance_shard(&mut self) -> Result<bool> {
        let Some(path) = self.paths.next() else {
            // Free the last shard promptly; the source may be held
            // while other families still parse.
            self.current = String::new();
            return Ok(false);
        };
        let text = std::fs::read_to_string(&path)?;
        let Some((header, data)) = split_header(&text) else {
            return Err(parse_error(
                self.family,
                1,
                format!("empty shard {}", path.display()),
            ));
        };
        match &self.header {
            None => {
                self.header = Some(header.to_owned());
                self.current = text;
                self.offset = 0;
                self.first_path = Some(path);
            }
            Some(expected) if expected == header => {
                // Later shards contribute data rows only: start the
                // cursor past the header (and anything before it), so
                // neither is yielded nor counted — exactly the merged
                // text's shape.
                self.offset = text.len() - data.len();
                self.current = text;
            }
            Some(_) => {
                return Err(parse_error(
                    self.family,
                    1,
                    format!(
                        "shard {} header differs from {}",
                        path.display(),
                        self.first_path
                            .as_ref()
                            .expect("a first shard set the header") // lint:allow(panic-in-lib): loop above wrote the header on the first iteration
                            .display(),
                    ),
                ));
            }
        }
        Ok(true)
    }
}

impl LineSource for ShardLines {
    fn next_line(&mut self) -> Result<Option<(usize, &str)>> {
        loop {
            if let Some((line_no, range)) = self.scan_current() {
                return Ok(Some((line_no, &self.current[range])));
            }
            if !self.advance_shard()? {
                return Ok(None);
            }
        }
    }
}

/// Reads and concatenates `paths` into one CSV text — the pre-streaming
/// ingestion path, retained only as the test oracle [`ShardLines`] is
/// compared byte-exact against.
#[cfg(test)]
fn read_merged(paths: &[PathBuf], family: &'static str) -> Result<String> {
    let mut merged = String::new();
    let mut first_header: Option<String> = None;
    for path in paths {
        let text = std::fs::read_to_string(path)?;
        let Some((header, data)) = split_header(&text) else {
            return Err(parse_error(
                family,
                1,
                format!("empty shard {}", path.display()),
            ));
        };
        match &first_header {
            None => {
                first_header = Some(header.to_owned());
                merged.push_str(&text);
            }
            Some(expected) if expected == header => {
                if !merged.ends_with('\n') {
                    merged.push('\n');
                }
                merged.push_str(data);
            }
            Some(_) => {
                return Err(parse_error(
                    family,
                    1,
                    format!(
                        "shard {} header differs from {}",
                        path.display(),
                        paths[0].display()
                    ),
                ));
            }
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::AzureDataset;
    use crate::fixture;
    use crate::test_support::{write_sharded, TempDir};

    fn collect(source: &mut dyn LineSource) -> Vec<(usize, String)> {
        let mut lines = Vec::new();
        while let Some((no, line)) = source.next_line().expect("line sources read") {
            lines.push((no, line.to_owned()));
        }
        lines
    }

    #[test]
    fn sharded_fixture_parses_identically_to_unsharded() {
        let dir = TempDir::new("shard-split");
        write_sharded(&dir, INVOCATIONS_STEM, fixture::INVOCATIONS_CSV, 2);
        write_sharded(&dir, DURATIONS_STEM, fixture::DURATIONS_CSV, 3);
        write_sharded(&dir, MEMORY_STEM, fixture::MEMORY_CSV, 2);
        let dataset = AzureDataset::from_dir(dir.path()).expect("sharded dir parses");
        assert_eq!(dataset, fixture::dataset());

        let (_, report) =
            AzureDataset::from_dir_with(dir.path(), crate::IngestMode::Strict).unwrap();
        assert_eq!(report.invocation_shards, 2);
        assert_eq!(report.duration_shards, 3);
        assert_eq!(report.memory_shards, 2);
        assert!(report.is_balanced());
    }

    #[test]
    fn shard_chain_streams_byte_exact_with_the_merged_text() {
        // The streaming chain (one shard in memory at a time) must
        // yield the very line stream — content and merged numbering —
        // that the old read-everything-then-parse path produced.
        let dir = TempDir::new("shard-stream");
        for shards in [1, 2, 4] {
            write_sharded(&dir, DURATIONS_STEM, fixture::DURATIONS_CSV, shards);
            let paths = discover(dir.path(), "durations", DURATIONS_STEM).unwrap();
            assert_eq!(paths.len(), shards);
            let merged = read_merged(&paths, "durations").unwrap();
            let streamed = collect(&mut ShardLines::new(paths, "durations"));
            let from_merged = collect(&mut TextLines::new(&merged));
            assert_eq!(streamed, from_merged, "{shards} shards");
            for path in discover(dir.path(), "durations", DURATIONS_STEM).unwrap() {
                std::fs::remove_file(path).unwrap();
            }
        }
    }

    #[test]
    fn shard_chain_handles_blank_lines_and_missing_trailing_newlines() {
        let dir = TempDir::new("shard-ragged");
        // Shard 1 ends without a newline; shard 2 has blanks around
        // its header and between rows.
        dir.write("function_durations.d01.csv", "h1,h2\na,1\n\nb,2");
        dir.write("function_durations.d02.csv", "\n\nh1,h2\r\nc,3\n\nd,4\n");
        let paths = discover(dir.path(), "durations", DURATIONS_STEM).unwrap();
        let merged = read_merged(&paths, "durations").unwrap();
        let streamed = collect(&mut ShardLines::new(paths, "durations"));
        assert_eq!(streamed, collect(&mut TextLines::new(&merged)));
        let rows: Vec<&str> = streamed.iter().map(|(_, line)| line.as_str()).collect();
        assert_eq!(rows, ["h1,h2", "a,1", "b,2", "c,3", "d,4"]);
    }

    #[test]
    fn real_download_names_match_the_stems() {
        let dir = TempDir::new("shard-realnames");
        dir.write(
            "invocations_per_function_md.anon.d01.csv",
            fixture::INVOCATIONS_CSV,
        );
        dir.write(
            "function_durations_percentiles.anon.d01.csv",
            fixture::DURATIONS_CSV,
        );
        dir.write("app_memory_percentiles.anon.d01.csv", fixture::MEMORY_CSV);
        assert_eq!(
            AzureDataset::from_dir(dir.path()).expect("real-name dir parses"),
            fixture::dataset()
        );
    }

    #[test]
    fn missing_family_is_its_own_error() {
        let dir = TempDir::new("shard-missing");
        dir.write("invocations_per_function.csv", fixture::INVOCATIONS_CSV);
        dir.write("function_durations.csv", fixture::DURATIONS_CSV);
        assert!(matches!(
            AzureDataset::from_dir(dir.path()),
            Err(TraceError::MissingFamily {
                family: "memory",
                ..
            })
        ));
    }

    #[test]
    fn shard_header_mismatch_is_rejected() {
        let dir = TempDir::new("drift");
        write_sharded(&dir, DURATIONS_STEM, fixture::DURATIONS_CSV, 1);
        write_sharded(&dir, MEMORY_STEM, fixture::MEMORY_CSV, 1);
        // Two invocation shards with different minute ranges.
        dir.write("invocations_per_function.d01.csv", fixture::INVOCATIONS_CSV);
        dir.write(
            "invocations_per_function.d02.csv",
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n",
        );
        let err = AzureDataset::from_dir(dir.path()).unwrap_err();
        assert!(err.to_string().contains("header differs"), "{err}");
    }

    #[test]
    fn empty_shard_is_rejected() {
        let dir = TempDir::new("shard-empty");
        dir.write("function_durations.d01.csv", fixture::DURATIONS_CSV);
        dir.write("function_durations.d02.csv", "\n  \n");
        let paths = discover(dir.path(), "durations", DURATIONS_STEM).unwrap();
        let mut chain = ShardLines::new(paths, "durations");
        let err = loop {
            match chain.next_line() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("empty shard must error, not end the stream"),
                Err(err) => break err,
            }
        };
        assert!(err.to_string().contains("empty shard"), "{err}");
    }

    #[test]
    fn headers_split_robustly() {
        assert_eq!(split_header("h\na\nb\n"), Some(("h", "a\nb\n")));
        assert_eq!(split_header("\n\nh\r\nrow\n"), Some(("h", "row\n")));
        assert_eq!(split_header("h"), Some(("h", "")));
        assert_eq!(split_header(""), None);
        assert_eq!(split_header("\n  \n"), None);
    }
}
