//! Shard discovery and merging for on-disk trace directories.
//!
//! The published Azure Functions 2019 download splits every CSV family
//! into per-day shards (`invocations_per_function_md.anon.d01.csv`,
//! `function_durations_percentiles.anon.d01.csv`,
//! `app_memory_percentiles.anon.d01.csv`, …). Discovery is by family
//! *stem*: any `<stem>*.csv` in the directory belongs to the family,
//! so both the repo's unsharded fixture names and the real download's
//! names match without renaming. Shards merge in ascending file-name
//! order with the first shard's header authoritative — and because
//! [`crate::AzureDataset`] holds rows in canonical key order, *any*
//! partition of the same rows across shards parses to the identical
//! dataset.
//!
//! One caveat: parse-error line numbers refer to the *merged* row
//! stream, not to a position inside an individual shard file.

use std::path::{Path, PathBuf};

use crate::azure::parse_error;
use crate::error::TraceError;
use crate::Result;

/// File-name stem of the invocations family
/// (`invocations_per_function*.csv`).
pub(crate) const INVOCATIONS_STEM: &str = "invocations_per_function";
/// File-name stem of the durations family (`function_durations*.csv`).
pub(crate) const DURATIONS_STEM: &str = "function_durations";
/// File-name stem of the memory family (`app_memory*.csv`).
pub(crate) const MEMORY_STEM: &str = "app_memory";

/// Finds `family`'s shard files in `dir`: every regular file named
/// `<stem>*.csv`, sorted by file name so the merge order is
/// deterministic regardless of directory-listing order.
pub(crate) fn discover(dir: &Path, family: &'static str, stem: &str) -> Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        // Files only (symlinks followed): a stray directory named like
        // a shard must not turn into an unreadable "shard".
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(stem) && name.ends_with(".csv") {
            paths.push(entry.path());
        }
    }
    if paths.is_empty() {
        return Err(TraceError::MissingFamily {
            family,
            dir: dir.display().to_string(),
        });
    }
    paths.sort();
    Ok(paths)
}

/// Splits `text` into its header line (first non-blank line, `\r`
/// trimmed) and everything after it.
fn split_header(text: &str) -> Option<(&str, &str)> {
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let end = offset + line.len();
        let trimmed = line.trim_end_matches('\n').trim_end_matches('\r');
        if trimmed.trim().is_empty() {
            offset = end;
            continue;
        }
        return Some((trimmed, &text[end..]));
    }
    None
}

/// Reads and concatenates `paths` into one CSV text: the first shard
/// passes through whole; every later shard must repeat the first's
/// header exactly and contributes only its data rows.
pub(crate) fn read_merged(paths: &[PathBuf], family: &'static str) -> Result<String> {
    let mut merged = String::new();
    let mut first_header: Option<String> = None;
    for path in paths {
        let text = std::fs::read_to_string(path)?;
        let Some((header, data)) = split_header(&text) else {
            return Err(parse_error(
                family,
                1,
                format!("empty shard {}", path.display()),
            ));
        };
        match &first_header {
            None => {
                first_header = Some(header.to_owned());
                merged.push_str(&text);
            }
            Some(expected) if expected == header => {
                if !merged.ends_with('\n') {
                    merged.push('\n');
                }
                merged.push_str(data);
            }
            Some(_) => {
                return Err(parse_error(
                    family,
                    1,
                    format!(
                        "shard {} header differs from {}",
                        path.display(),
                        paths[0].display()
                    ),
                ));
            }
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::AzureDataset;
    use crate::fixture;
    use crate::test_support::{write_sharded, TempDir};

    #[test]
    fn sharded_fixture_parses_identically_to_unsharded() {
        let dir = TempDir::new("shard-split");
        write_sharded(&dir, INVOCATIONS_STEM, fixture::INVOCATIONS_CSV, 2);
        write_sharded(&dir, DURATIONS_STEM, fixture::DURATIONS_CSV, 3);
        write_sharded(&dir, MEMORY_STEM, fixture::MEMORY_CSV, 2);
        let dataset = AzureDataset::from_dir(dir.path()).expect("sharded dir parses");
        assert_eq!(dataset, fixture::dataset());

        let (_, report) =
            AzureDataset::from_dir_with(dir.path(), crate::IngestMode::Strict).unwrap();
        assert_eq!(report.invocation_shards, 2);
        assert_eq!(report.duration_shards, 3);
        assert_eq!(report.memory_shards, 2);
        assert!(report.is_balanced());
    }

    #[test]
    fn real_download_names_match_the_stems() {
        let dir = TempDir::new("shard-realnames");
        dir.write(
            "invocations_per_function_md.anon.d01.csv",
            fixture::INVOCATIONS_CSV,
        );
        dir.write(
            "function_durations_percentiles.anon.d01.csv",
            fixture::DURATIONS_CSV,
        );
        dir.write("app_memory_percentiles.anon.d01.csv", fixture::MEMORY_CSV);
        assert_eq!(
            AzureDataset::from_dir(dir.path()).expect("real-name dir parses"),
            fixture::dataset()
        );
    }

    #[test]
    fn missing_family_is_its_own_error() {
        let dir = TempDir::new("shard-missing");
        dir.write("invocations_per_function.csv", fixture::INVOCATIONS_CSV);
        dir.write("function_durations.csv", fixture::DURATIONS_CSV);
        assert!(matches!(
            AzureDataset::from_dir(dir.path()),
            Err(TraceError::MissingFamily {
                family: "memory",
                ..
            })
        ));
    }

    #[test]
    fn shard_header_mismatch_is_rejected() {
        let dir = TempDir::new("drift");
        write_sharded(&dir, DURATIONS_STEM, fixture::DURATIONS_CSV, 1);
        write_sharded(&dir, MEMORY_STEM, fixture::MEMORY_CSV, 1);
        // Two invocation shards with different minute ranges.
        dir.write("invocations_per_function.d01.csv", fixture::INVOCATIONS_CSV);
        dir.write(
            "invocations_per_function.d02.csv",
            "HashOwner,HashApp,HashFunction,Trigger,1,2\n",
        );
        let err = AzureDataset::from_dir(dir.path()).unwrap_err();
        assert!(err.to_string().contains("header differs"), "{err}");
    }

    #[test]
    fn headers_split_robustly() {
        assert_eq!(split_header("h\na\nb\n"), Some(("h", "a\nb\n")));
        assert_eq!(split_header("\n\nh\r\nrow\n"), Some(("h", "row\n")));
        assert_eq!(split_header("h"), Some(("h", "")));
        assert_eq!(split_header(""), None);
        assert_eq!(split_header("\n  \n"), None);
    }
}
