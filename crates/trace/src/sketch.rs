//! Percentile sketches: the compressed distribution summaries the
//! Azure Functions trace publishes per function (duration percentiles)
//! and per app (allocated-memory percentiles), with deterministic
//! inverse-CDF sampling for trace expansion.

use rand::rngs::StdRng;
use rand::Rng;

use crate::error::TraceError;
use crate::Result;

/// A distribution summarized by a handful of `(percentile, value)`
/// points, as published in the Azure Functions 2019 trace. Quantiles
/// between the published points are linearly interpolated, which is
/// exact enough for workload shaping and keeps the sketch tiny.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileSketch {
    /// `(percentile in [0, 100], value)`, strictly increasing in the
    /// percentile and non-decreasing in the value.
    points: Vec<(f64, f64)>,
}

impl PercentileSketch {
    /// Builds a sketch from `(percentile, value)` points.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidSketch`] when the points are empty, a
    /// percentile is outside `[0, 100]` or not strictly increasing, or
    /// a value is negative, non-finite, or decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(TraceError::InvalidSketch("no percentile points"));
        }
        for pair in points.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(TraceError::InvalidSketch(
                    "percentiles must be strictly increasing",
                ));
            }
            if pair[0].1 > pair[1].1 {
                return Err(TraceError::InvalidSketch(
                    "values must be non-decreasing in the percentile",
                ));
            }
        }
        for &(pct, value) in &points {
            if !(0.0..=100.0).contains(&pct) {
                return Err(TraceError::InvalidSketch("percentile outside [0, 100]"));
            }
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSketch(
                    "value must be finite and non-negative",
                ));
            }
        }
        Ok(PercentileSketch { points })
    }

    /// The `(percentile, value)` points, ascending.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Smallest summarized value (the first point).
    pub fn min(&self) -> f64 {
        self.points[0].1
    }

    /// Largest summarized value (the last point).
    pub fn max(&self) -> f64 {
        self.points[self.points.len() - 1].1
    }

    /// Value at quantile `q` in `[0, 1]` (clamped), linearly
    /// interpolated between the published points and flat beyond them.
    pub fn quantile(&self, q: f64) -> f64 {
        let pct = (q.clamp(0.0, 1.0)) * 100.0;
        let first = self.points[0];
        if pct <= first.0 {
            return first.1;
        }
        for pair in self.points.windows(2) {
            let (lo_pct, lo) = pair[0];
            let (hi_pct, hi) = pair[1];
            if pct <= hi_pct {
                let t = (pct - lo_pct) / (hi_pct - lo_pct);
                return lo + t * (hi - lo);
            }
        }
        self.points[self.points.len() - 1].1
    }

    /// Median (the 50th-percentile quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the interpolated distribution (trapezoid rule over the
    /// quantile function) — a smoothed stand-in when the source file
    /// carries no explicit average.
    pub fn mean_estimate(&self) -> f64 {
        let mut mean = 0.0;
        // Flat tails below the first and above the last point.
        mean += self.points[0].1 * self.points[0].0 / 100.0;
        for pair in self.points.windows(2) {
            let width = (pair[1].0 - pair[0].0) / 100.0;
            mean += width * (pair[0].1 + pair[1].1) / 2.0;
        }
        let last = self.points[self.points.len() - 1];
        mean += last.1 * (100.0 - last.0) / 100.0;
        mean
    }

    /// Draws one value by inverse-CDF sampling: a uniform quantile from
    /// `rng` through [`PercentileSketch::quantile`]. Returns
    /// `(quantile, value)` so callers can reuse the rank (the trace
    /// expander maps it onto a benchmark pool's duration spread).
    pub fn sample(&self, rng: &mut StdRng) -> (f64, f64) {
        let q: f64 = rng.gen_range(0.0..1.0);
        (q, self.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sketch() -> PercentileSketch {
        PercentileSketch::new(vec![
            (0.0, 10.0),
            (25.0, 20.0),
            (50.0, 40.0),
            (75.0, 80.0),
            (99.0, 200.0),
            (100.0, 1000.0),
        ])
        .unwrap()
    }

    #[test]
    fn quantiles_interpolate_between_points() {
        let s = sketch();
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 1000.0);
        assert_eq!(s.quantile(0.5), 40.0);
        // Halfway between p25 (20) and p50 (40).
        assert!((s.quantile(0.375) - 30.0).abs() < 1e-9);
        // Clamped outside [0, 1].
        assert_eq!(s.quantile(-3.0), 10.0);
        assert_eq!(s.quantile(7.0), 1000.0);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 1000.0);
        assert_eq!(s.median(), 40.0);
    }

    #[test]
    fn mean_estimate_sits_inside_the_support() {
        let s = sketch();
        let mean = s.mean_estimate();
        assert!(mean > s.min() && mean < s.max(), "mean {mean}");
        // A single-point sketch is a constant.
        let constant = PercentileSketch::new(vec![(50.0, 7.0)]).unwrap();
        assert_eq!(constant.mean_estimate(), 7.0);
        assert_eq!(constant.quantile(0.2), 7.0);
        assert_eq!(constant.quantile(0.9), 7.0);
    }

    #[test]
    fn sampling_is_deterministic_and_in_support() {
        let s = sketch();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let (qa, va) = s.sample(&mut a);
            let (qb, vb) = s.sample(&mut b);
            assert_eq!((qa, va), (qb, vb));
            assert!((s.min()..=s.max()).contains(&va));
        }
    }

    #[test]
    fn degenerate_sketches_are_rejected() {
        assert!(PercentileSketch::new(Vec::new()).is_err());
        assert!(PercentileSketch::new(vec![(50.0, 1.0), (50.0, 2.0)]).is_err());
        assert!(PercentileSketch::new(vec![(25.0, 5.0), (75.0, 1.0)]).is_err());
        assert!(PercentileSketch::new(vec![(-1.0, 5.0)]).is_err());
        assert!(PercentileSketch::new(vec![(101.0, 5.0)]).is_err());
        assert!(PercentileSketch::new(vec![(50.0, f64::NAN)]).is_err());
        assert!(PercentileSketch::new(vec![(50.0, -2.0)]).is_err());
    }
}
