//! Zero-dependency parser (and writer, for round-trip format checks)
//! for the **Azure Functions 2019 trace** format — the public dataset
//! released with *Serverless in the Wild* (ATC '20) and the de-facto
//! standard arrival-trace format serverless papers evaluate against.
//!
//! The dataset is three CSV families:
//!
//! * **invocations** — per function, invocation *counts per minute*
//!   (`HashOwner,HashApp,HashFunction,Trigger,1,2,…,N`);
//! * **durations** — per function, execution-time percentiles
//!   (`…,Average,Count,Minimum,Maximum,percentile_Average_0,…`);
//! * **memory** — per *app*, allocated-memory percentiles
//!   (`HashOwner,HashApp,SampleCount,AverageAllocatedMb,…`).
//!
//! Hash columns are opaque anonymized identifiers; they never contain
//! commas or quotes, so a plain comma split is a faithful parse and no
//! CSV dependency is needed.
//!
//! The real download shards each family per day
//! (`invocations_per_function_md.anon.d01.csv`, …); see
//! [`AzureDataset::from_dir`] for shard discovery and
//! [`crate::IngestMode`] for the lossy path real (incomplete) days
//! need.

use std::path::Path;

use crate::error::TraceError;
use crate::ingest::{self, IngestMode, IngestReport};
use crate::shard::{self, LineSource};
use crate::sketch::PercentileSketch;
use crate::Result;

/// File name the invocation-count CSV is distributed under (the full
/// dataset shards this per day: `invocations_per_function_md.anon.d01.csv`
/// and so on; the bundled fixture uses the unsharded name).
pub const INVOCATIONS_FILE: &str = "invocations_per_function.csv";
/// File name of the per-function duration-percentile CSV.
pub const DURATIONS_FILE: &str = "function_durations.csv";
/// File name of the per-app allocated-memory CSV.
pub const MEMORY_FILE: &str = "app_memory.csv";

pub(crate) const INVOCATIONS: &str = "invocations";
pub(crate) const DURATIONS: &str = "durations";
pub(crate) const MEMORY: &str = "memory";

/// What fires a function, as recorded in the trace's `Trigger` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trigger {
    /// HTTP request.
    Http,
    /// Timer (cron-like schedule).
    Timer,
    /// Queue message.
    Queue,
    /// Storage event (blob created/changed).
    Storage,
    /// Event-grid / event-hub event.
    Event,
    /// Durable-functions orchestration activity.
    Orchestration,
    /// Everything else the dataset lumps together.
    Others,
}

impl Trigger {
    /// Every trigger kind, in the writer's emission order.
    pub const ALL: [Trigger; 7] = [
        Trigger::Http,
        Trigger::Timer,
        Trigger::Queue,
        Trigger::Storage,
        Trigger::Event,
        Trigger::Orchestration,
        Trigger::Others,
    ];

    /// The trace's column spelling for this trigger.
    pub fn as_str(&self) -> &'static str {
        match self {
            Trigger::Http => "http",
            Trigger::Timer => "timer",
            Trigger::Queue => "queue",
            Trigger::Storage => "storage",
            Trigger::Event => "event",
            Trigger::Orchestration => "orchestration",
            Trigger::Others => "others",
        }
    }

    /// Case-insensitive parse. Allocation-free on purpose: this runs
    /// once per invocation row, and a full day of the real dataset is
    /// hundreds of thousands of rows — a per-row lowercase `String`
    /// was measurable in the `trace_ingest` parse bench.
    fn parse(text: &str) -> Option<Trigger> {
        Trigger::ALL
            .into_iter()
            .find(|trigger| text.eq_ignore_ascii_case(trigger.as_str()))
    }
}

impl std::fmt::Display for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One function of the trace: its identity, per-minute invocation
/// counts and duration distribution (the invocations and durations
/// files joined on `owner/app/function`).
#[derive(Debug, Clone, PartialEq)]
pub struct AzureFunction {
    /// Anonymized owning-customer hash (`HashOwner`).
    pub owner: String,
    /// Anonymized application hash (`HashApp`); the trace's billing
    /// and memory unit.
    pub app: String,
    /// Anonymized function hash (`HashFunction`).
    pub function: String,
    /// What fires the function.
    pub trigger: Trigger,
    /// Invocations per minute, one entry per trace minute.
    pub counts: Vec<u32>,
    /// Mean execution time, ms (the durations file's `Average`).
    pub mean_duration_ms: f64,
    /// How many executions the duration statistics summarize.
    pub sampled_executions: u64,
    /// Fastest sampled execution, ms.
    pub min_duration_ms: f64,
    /// Slowest sampled execution, ms.
    pub max_duration_ms: f64,
    /// Execution-time percentile sketch, ms.
    pub duration_ms: PercentileSketch,
}

impl AzureFunction {
    /// `owner/app/function` — the join key, also used in diagnostics.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.owner, self.app, self.function)
    }

    /// Total invocations across every minute.
    pub fn total_invocations(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }
}

/// One application's allocated-memory distribution (the memory file;
/// memory is metered per app, not per function).
#[derive(Debug, Clone, PartialEq)]
pub struct AzureApp {
    /// Anonymized owning-customer hash.
    pub owner: String,
    /// Anonymized application hash.
    pub app: String,
    /// How many samples the memory statistics summarize.
    pub sample_count: u64,
    /// Mean allocated memory, MB (`AverageAllocatedMb`).
    pub mean_allocated_mb: f64,
    /// Allocated-memory percentile sketch, MB.
    pub allocated_mb: PercentileSketch,
}

/// A parsed Azure Functions trace: every function with its per-minute
/// counts and duration sketch, plus per-app memory statistics.
///
/// Functions and apps are held in **canonical key order** (ascending
/// `owner/app/function` and `owner/app` respectively), not CSV row
/// order — so a dataset is a pure function of its row *set*, and any
/// partition of the rows into shards ([`AzureDataset::from_dir`])
/// parses to the identical dataset.
///
/// # Examples
///
/// ```
/// let dataset = litmus_trace::fixture::dataset();
/// assert!(dataset.total_invocations() > 0);
/// for function in dataset.functions() {
///     assert_eq!(function.counts.len(), dataset.minutes());
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AzureDataset {
    functions: Vec<AzureFunction>,
    apps: Vec<AzureApp>,
    minutes: usize,
}

impl AzureDataset {
    /// Assembles a dataset from already-joined parts (the ingest
    /// module's constructor; rows are sorted into canonical order
    /// here so every ingest path shares the invariant).
    pub(crate) fn assemble(
        mut functions: Vec<AzureFunction>,
        mut apps: Vec<AzureApp>,
        minutes: usize,
    ) -> Self {
        functions
            .sort_by(|a, b| (&a.owner, &a.app, &a.function).cmp(&(&b.owner, &b.app, &b.function)));
        apps.sort_by(|a, b| (&a.owner, &a.app).cmp(&(&b.owner, &b.app)));
        AzureDataset {
            functions,
            apps,
            minutes,
        }
    }

    /// Parses the three CSV texts into one joined dataset.
    ///
    /// Strictness is deliberate — the fixture round-trip in CI leans on
    /// it to catch format drift early:
    ///
    /// * headers must match the published format exactly (minute
    ///   columns `1,2,…,N` in order, percentile columns in ascending
    ///   order);
    /// * every invocations row must join a durations row and vice
    ///   versa ([`TraceError::Unjoined`] otherwise), and no file may
    ///   repeat a key;
    /// * duration rows must summarize at least one execution
    ///   (`Count ≥ 1`) with finite percentile values — a `Count == 0`
    ///   or `NaN`/`inf` row would otherwise flow into
    ///   [`PercentileSketch`] sampling and poison downstream weights;
    /// * memory rows are optional per app (the real dataset does not
    ///   cover every app) but must join an app that invokes something.
    ///
    /// The real (incomplete) dataset needs the lossy path instead —
    /// see [`AzureDataset::from_csv_with`] and [`crate::IngestMode`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] / [`TraceError::Unjoined`] as above.
    pub fn from_csv(invocations: &str, durations: &str, memory: &str) -> Result<Self> {
        Self::from_csv_with(invocations, durations, memory, IngestMode::Strict)
            .map(|(dataset, _)| dataset)
    }

    /// Parses the three CSV texts under an explicit [`IngestMode`],
    /// returning the dataset together with the [`IngestReport`] of
    /// per-category drop/impute counters.
    ///
    /// `IngestMode::Strict` behaves exactly like
    /// [`AzureDataset::from_csv`]; the lossy modes tolerate the
    /// incompleteness the real dataset ships with (functions missing
    /// duration rows, degenerate duration rows, orphaned rows) by
    /// counting and skipping — or imputing — instead of erroring.
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] for malformed headers or structurally
    /// broken rows (wrong column count, empty identity hashes) in any
    /// mode; value-level and join failures only in strict mode.
    pub fn from_csv_with(
        invocations: &str,
        durations: &str,
        memory: &str,
        mode: IngestMode,
    ) -> Result<(Self, IngestReport)> {
        ingest::ingest(
            &mut shard::TextLines::new(invocations),
            &mut shard::TextLines::new(durations),
            &mut shard::TextLines::new(memory),
            mode,
        )
    }

    /// Reads and parses one trace day from `dir`, discovering each CSV
    /// family's shards.
    ///
    /// For every family the directory may hold either the unsharded
    /// file ([`INVOCATIONS_FILE`], [`DURATIONS_FILE`], [`MEMORY_FILE`])
    /// or any number of `<stem>*.csv` shards (the real download's
    /// `invocations_per_function_md.anon.d01.csv` naming matches the
    /// `invocations_per_function` stem). Shards are merged in
    /// ascending file-name order; every shard must repeat the family
    /// header exactly. Because datasets are canonically ordered, *any*
    /// partition of the rows into shards parses to the identical
    /// dataset.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on read failures,
    /// [`TraceError::MissingFamily`] when a family has no file, a
    /// [`TraceError::Parse`] on shard-header mismatch, plus everything
    /// [`AzureDataset::from_csv`] rejects.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self> {
        Self::from_dir_with(dir, IngestMode::Strict).map(|(dataset, _)| dataset)
    }

    /// [`AzureDataset::from_dir`] under an explicit [`IngestMode`],
    /// returning the per-category [`IngestReport`] (including how many
    /// shards each family was merged from).
    ///
    /// Shards stream one at a time through chained per-shard readers,
    /// so peak ingest memory is the largest single shard (plus the
    /// parsed rows), never a whole merged family — the property that
    /// makes multi-GB real days ingestible.
    ///
    /// # Errors
    ///
    /// As [`AzureDataset::from_dir`]; join and value-level failures
    /// only in strict mode.
    pub fn from_dir_with(dir: impl AsRef<Path>, mode: IngestMode) -> Result<(Self, IngestReport)> {
        let dir = dir.as_ref();
        let invocations = shard::discover(dir, INVOCATIONS, shard::INVOCATIONS_STEM)?;
        let durations = shard::discover(dir, DURATIONS, shard::DURATIONS_STEM)?;
        let memory = shard::discover(dir, MEMORY, shard::MEMORY_STEM)?;
        let shard_counts = (
            invocations.len() as u64,
            durations.len() as u64,
            memory.len() as u64,
        );
        let (dataset, mut report) = ingest::ingest(
            &mut shard::ShardLines::new(invocations, INVOCATIONS),
            &mut shard::ShardLines::new(durations, DURATIONS),
            &mut shard::ShardLines::new(memory, MEMORY),
            mode,
        )?;
        (
            report.invocation_shards,
            report.duration_shards,
            report.memory_shards,
        ) = shard_counts;
        Ok((dataset, report))
    }

    /// The functions, in canonical ascending `owner/app/function`
    /// order (independent of CSV row order).
    pub fn functions(&self) -> &[AzureFunction] {
        &self.functions
    }

    /// The apps with memory statistics, in canonical ascending
    /// `owner/app` order.
    pub fn apps(&self) -> &[AzureApp] {
        &self.apps
    }

    /// How many trace minutes the counts cover.
    pub fn minutes(&self) -> usize {
        self.minutes
    }

    /// Whether the dataset has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Total invocations across every function and minute.
    pub fn total_invocations(&self) -> u64 {
        self.functions
            .iter()
            .map(AzureFunction::total_invocations)
            .sum()
    }

    /// Memory statistics of `owner`'s `app`, when the trace has them.
    pub fn memory_of(&self, owner: &str, app: &str) -> Option<&AzureApp> {
        self.apps
            .binary_search_by(|a| (a.owner.as_str(), a.app.as_str()).cmp(&(owner, app)))
            .ok()
            .map(|idx| &self.apps[idx])
    }

    /// Serializes back to the invocations CSV (exact header, rows in
    /// the dataset's canonical order) — the other half of the
    /// round-trip format check.
    pub fn to_invocations_csv(&self) -> String {
        let mut out = String::from("HashOwner,HashApp,HashFunction,Trigger");
        for minute in 1..=self.minutes {
            out.push(',');
            out.push_str(&minute.to_string());
        }
        out.push('\n');
        for f in &self.functions {
            out.push_str(&format!(
                "{},{},{},{}",
                f.owner, f.app, f.function, f.trigger
            ));
            for count in &f.counts {
                out.push(',');
                out.push_str(&count.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Serializes back to the durations CSV.
    pub fn to_durations_csv(&self) -> String {
        let mut out = String::from("HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum");
        let pcts: Vec<f64> = self
            .functions
            .first()
            .map(|f| f.duration_ms.points().iter().map(|&(p, _)| p).collect())
            .unwrap_or_default();
        for pct in &pcts {
            out.push_str(&format!(",percentile_Average_{pct}"));
        }
        out.push('\n');
        for f in &self.functions {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}",
                f.owner,
                f.app,
                f.function,
                f.mean_duration_ms,
                f.sampled_executions,
                f.min_duration_ms,
                f.max_duration_ms
            ));
            for &(_, value) in f.duration_ms.points() {
                out.push(',');
                out.push_str(&value.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Serializes back to the memory CSV.
    pub fn to_memory_csv(&self) -> String {
        let mut out = String::from("HashOwner,HashApp,SampleCount,AverageAllocatedMb");
        let pcts: Vec<f64> = self
            .apps
            .first()
            .map(|a| a.allocated_mb.points().iter().map(|&(p, _)| p).collect())
            .unwrap_or_default();
        for pct in &pcts {
            out.push_str(&format!(",AverageAllocatedMb_pct{pct}"));
        }
        out.push('\n');
        for a in &self.apps {
            out.push_str(&format!(
                "{},{},{},{}",
                a.owner, a.app, a.sample_count, a.mean_allocated_mb
            ));
            for &(_, value) in a.allocated_mb.points() {
                out.push(',');
                out.push_str(&value.to_string());
            }
            out.push('\n');
        }
        out
    }
}

pub(crate) struct InvocationRow {
    pub(crate) owner: String,
    pub(crate) app: String,
    pub(crate) function: String,
    pub(crate) trigger: Trigger,
    pub(crate) counts: Vec<u32>,
}

pub(crate) struct DurationRow {
    pub(crate) owner: String,
    pub(crate) app: String,
    pub(crate) function: String,
    pub(crate) average: f64,
    pub(crate) count: u64,
    pub(crate) minimum: f64,
    pub(crate) maximum: f64,
    pub(crate) sketch: PercentileSketch,
}

/// Parse result of one CSV family: the surviving rows plus how many
/// data rows the text held and how many were lossy-skipped (zero in
/// strict mode, where skippable rows are errors instead).
pub(crate) struct Parsed<R> {
    pub(crate) rows: Vec<R>,
    /// Total data rows in the file (header excluded, blank lines
    /// skipped) — kept + every skipped category.
    pub(crate) total_rows: u64,
    /// Rows dropped for value-level damage (unparseable numbers,
    /// non-finite values, unknown triggers, degenerate sketches).
    pub(crate) invalid_skipped: u64,
    /// Duration rows dropped because `Count == 0` (they summarize no
    /// executions); always zero for the other families.
    pub(crate) zero_count_skipped: u64,
}

pub(crate) fn parse_error(
    file: &'static str,
    line: usize,
    message: impl Into<String>,
) -> TraceError {
    TraceError::Parse {
        file,
        line,
        message: message.into(),
    }
}

fn fields(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

fn expect_prefix(
    file: &'static str,
    header: &[&str],
    expected: &[&str],
) -> std::result::Result<(), TraceError> {
    if header.len() < expected.len() {
        return Err(parse_error(
            file,
            1,
            format!(
                "header has {} columns, expected at least {}",
                header.len(),
                expected.len()
            ),
        ));
    }
    for (got, want) in header.iter().zip(expected) {
        if got != want {
            return Err(parse_error(
                file,
                1,
                format!("header column {got:?}, expected {want:?}"),
            ));
        }
    }
    Ok(())
}

fn parse_f64(file: &'static str, line: usize, text: &str, what: &str) -> Result<f64> {
    let value: f64 = text
        .parse()
        .map_err(|_| parse_error(file, line, format!("{what}: not a number: {text:?}")))?;
    if !value.is_finite() {
        return Err(parse_error(file, line, format!("{what}: non-finite value")));
    }
    Ok(value)
}

pub(crate) fn parse_invocations(
    lines: &mut dyn LineSource,
    lossy: bool,
) -> Result<(usize, Parsed<InvocationRow>)> {
    let (_, header) = lines
        .next_line()?
        .ok_or_else(|| parse_error(INVOCATIONS, 1, "empty file"))?;
    let header = fields(header);
    expect_prefix(
        INVOCATIONS,
        &header,
        &["HashOwner", "HashApp", "HashFunction", "Trigger"],
    )?;
    let minutes = header.len() - 4;
    for (idx, col) in header[4..].iter().enumerate() {
        if col.parse::<usize>() != Ok(idx + 1) {
            return Err(parse_error(
                INVOCATIONS,
                1,
                format!("minute column {} is {col:?}, expected {}", idx + 5, idx + 1),
            ));
        }
    }
    drop(header);

    let mut parsed = Parsed {
        rows: Vec::new(),
        total_rows: 0,
        invalid_skipped: 0,
        zero_count_skipped: 0,
    };
    while let Some((line, row)) = lines.next_line()? {
        parsed.total_rows += 1;
        let cells = fields(row);
        // Structural damage is a hard error in every mode: a ragged
        // row means the file is corrupt, not that the data is sparse.
        if cells.len() != 4 + minutes {
            return Err(parse_error(
                INVOCATIONS,
                line,
                format!("{} columns, expected {}", cells.len(), 4 + minutes),
            ));
        }
        if cells[..3].iter().any(|cell| cell.is_empty()) {
            return Err(parse_error(INVOCATIONS, line, "empty identity hash"));
        }
        let values = (|| -> Result<InvocationRow> {
            let trigger = Trigger::parse(cells[3]).ok_or_else(|| {
                parse_error(INVOCATIONS, line, format!("unknown trigger {:?}", cells[3]))
            })?;
            let mut counts = Vec::with_capacity(minutes);
            for cell in &cells[4..] {
                counts.push(cell.parse::<u32>().map_err(|_| {
                    parse_error(INVOCATIONS, line, format!("bad minute count {cell:?}"))
                })?);
            }
            Ok(InvocationRow {
                owner: cells[0].to_owned(),
                app: cells[1].to_owned(),
                function: cells[2].to_owned(),
                trigger,
                counts,
            })
        })();
        match values {
            Ok(row) => parsed.rows.push(row),
            Err(_) if lossy => parsed.invalid_skipped += 1,
            Err(err) => return Err(err),
        }
    }
    Ok((minutes, parsed))
}

fn percentile_columns(
    file: &'static str,
    header: &[&str],
    fixed: usize,
    prefix: &str,
) -> Result<Vec<f64>> {
    let mut pcts = Vec::new();
    for (idx, col) in header[fixed..].iter().enumerate() {
        let suffix = col.strip_prefix(prefix).ok_or_else(|| {
            parse_error(
                file,
                1,
                format!(
                    "column {} is {col:?}, expected a {prefix}* percentile",
                    fixed + idx + 1
                ),
            )
        })?;
        let pct = parse_f64(file, 1, suffix, "percentile")?;
        if let Some(&last) = pcts.last() {
            if pct <= last {
                return Err(parse_error(file, 1, "percentile columns must ascend"));
            }
        }
        pcts.push(pct);
    }
    if pcts.is_empty() {
        return Err(parse_error(file, 1, "no percentile columns"));
    }
    Ok(pcts)
}

pub(crate) fn parse_durations(
    lines: &mut dyn LineSource,
    lossy: bool,
) -> Result<Parsed<DurationRow>> {
    let (_, header) = lines
        .next_line()?
        .ok_or_else(|| parse_error(DURATIONS, 1, "empty file"))?;
    let header = fields(header);
    const FIXED: [&str; 7] = [
        "HashOwner",
        "HashApp",
        "HashFunction",
        "Average",
        "Count",
        "Minimum",
        "Maximum",
    ];
    expect_prefix(DURATIONS, &header, &FIXED)?;
    let pcts = percentile_columns(DURATIONS, &header, FIXED.len(), "percentile_Average_")?;
    drop(header);

    let mut parsed = Parsed {
        rows: Vec::new(),
        total_rows: 0,
        invalid_skipped: 0,
        zero_count_skipped: 0,
    };
    while let Some((line, row)) = lines.next_line()? {
        parsed.total_rows += 1;
        let cells = fields(row);
        if cells.len() != FIXED.len() + pcts.len() {
            return Err(parse_error(
                DURATIONS,
                line,
                format!(
                    "{} columns, expected {}",
                    cells.len(),
                    FIXED.len() + pcts.len()
                ),
            ));
        }
        // `Count == 0` is its own category: the row parses, but it
        // summarizes no executions — sampling its sketch would weight
        // arrivals by statistics of nothing.
        if cells[4].parse::<u64>() == Ok(0) {
            if lossy {
                parsed.zero_count_skipped += 1;
                continue;
            }
            return Err(parse_error(
                DURATIONS,
                line,
                "Count is 0: the row summarizes no executions",
            ));
        }
        let values = (|| -> Result<DurationRow> {
            let mut points = Vec::with_capacity(pcts.len());
            for (pct, cell) in pcts.iter().zip(&cells[FIXED.len()..]) {
                points.push((
                    *pct,
                    parse_f64(DURATIONS, line, cell, "duration percentile")?,
                ));
            }
            let sketch = PercentileSketch::new(points)
                .map_err(|e| parse_error(DURATIONS, line, e.to_string()))?;
            Ok(DurationRow {
                owner: cells[0].to_owned(),
                app: cells[1].to_owned(),
                function: cells[2].to_owned(),
                average: parse_f64(DURATIONS, line, cells[3], "Average")?,
                count: cells[4].parse().map_err(|_| {
                    parse_error(DURATIONS, line, format!("bad Count {:?}", cells[4]))
                })?,
                minimum: parse_f64(DURATIONS, line, cells[5], "Minimum")?,
                maximum: parse_f64(DURATIONS, line, cells[6], "Maximum")?,
                sketch,
            })
        })();
        match values {
            Ok(row) => parsed.rows.push(row),
            Err(_) if lossy => parsed.invalid_skipped += 1,
            Err(err) => return Err(err),
        }
    }
    Ok(parsed)
}

pub(crate) fn parse_memory(lines: &mut dyn LineSource, lossy: bool) -> Result<Parsed<AzureApp>> {
    let (_, header) = lines
        .next_line()?
        .ok_or_else(|| parse_error(MEMORY, 1, "empty file"))?;
    let header = fields(header);
    const FIXED: [&str; 4] = ["HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb"];
    expect_prefix(MEMORY, &header, &FIXED)?;
    let pcts = percentile_columns(MEMORY, &header, FIXED.len(), "AverageAllocatedMb_pct")?;
    drop(header);

    let mut parsed = Parsed {
        rows: Vec::new(),
        total_rows: 0,
        invalid_skipped: 0,
        zero_count_skipped: 0,
    };
    while let Some((line, row)) = lines.next_line()? {
        parsed.total_rows += 1;
        let cells = fields(row);
        if cells.len() != FIXED.len() + pcts.len() {
            return Err(parse_error(
                MEMORY,
                line,
                format!(
                    "{} columns, expected {}",
                    cells.len(),
                    FIXED.len() + pcts.len()
                ),
            ));
        }
        let values = (|| -> Result<AzureApp> {
            let mut points = Vec::with_capacity(pcts.len());
            for (pct, cell) in pcts.iter().zip(&cells[FIXED.len()..]) {
                points.push((*pct, parse_f64(MEMORY, line, cell, "memory percentile")?));
            }
            let sketch = PercentileSketch::new(points)
                .map_err(|e| parse_error(MEMORY, line, e.to_string()))?;
            Ok(AzureApp {
                owner: cells[0].to_owned(),
                app: cells[1].to_owned(),
                sample_count: cells[2].parse().map_err(|_| {
                    parse_error(MEMORY, line, format!("bad SampleCount {:?}", cells[2]))
                })?,
                mean_allocated_mb: parse_f64(MEMORY, line, cells[3], "AverageAllocatedMb")?,
                allocated_mb: sketch,
            })
        })();
        match values {
            Ok(row) => parsed.rows.push(row),
            Err(_) if lossy => parsed.invalid_skipped += 1,
            Err(err) => return Err(err),
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n\
                       o1,a1,f1,http,4,0,2\n\
                       o1,a1,f2,timer,1,1,1\n";
    const DUR: &str = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,\
                       percentile_Average_0,percentile_Average_50,percentile_Average_100\n\
                       o1,a1,f1,120,7,10,400,10,100,400\n\
                       o1,a1,f2,60000,3,50000,80000,50000,60000,80000\n";
    const MEM: &str = "HashOwner,HashApp,SampleCount,AverageAllocatedMb,\
                       AverageAllocatedMb_pct50,AverageAllocatedMb_pct100\n\
                       o1,a1,10,96,90,128\n";

    #[test]
    fn joined_parse_round_trips() {
        let dataset = AzureDataset::from_csv(INV, DUR, MEM).unwrap();
        assert_eq!(dataset.minutes(), 3);
        assert_eq!(dataset.functions().len(), 2);
        assert_eq!(dataset.total_invocations(), 9);
        let f1 = &dataset.functions()[0];
        assert_eq!(f1.trigger, Trigger::Http);
        assert_eq!(f1.counts, vec![4, 0, 2]);
        assert_eq!(f1.duration_ms.median(), 100.0);
        assert!(dataset.memory_of("o1", "a1").is_some());
        assert!(dataset.memory_of("o1", "nope").is_none());

        let reparsed = AzureDataset::from_csv(
            &dataset.to_invocations_csv(),
            &dataset.to_durations_csv(),
            &dataset.to_memory_csv(),
        )
        .unwrap();
        assert_eq!(dataset, reparsed);
    }

    #[test]
    fn parse_is_row_order_invariant() {
        // Swapping CSV rows yields the identical dataset: rows are
        // canonically re-ordered, which is what makes any shard
        // partition of the same rows parse identically.
        let swapped_inv = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n\
                           o1,a1,f2,timer,1,1,1\n\
                           o1,a1,f1,http,4,0,2\n";
        let a = AzureDataset::from_csv(INV, DUR, MEM).unwrap();
        let b = AzureDataset::from_csv(swapped_inv, DUR, MEM).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unjoined_functions_fail_fast() {
        let extra_inv = format!("{INV}o2,a2,f9,queue,1,1,1\n");
        assert!(matches!(
            AzureDataset::from_csv(&extra_inv, DUR, MEM),
            Err(TraceError::Unjoined {
                file: "durations",
                ..
            })
        ));
        let extra_dur = format!("{DUR}o2,a2,f9,5,1,5,5,5,5,5\n");
        assert!(matches!(
            AzureDataset::from_csv(INV, &extra_dur, MEM),
            Err(TraceError::Unjoined {
                file: "invocations",
                ..
            })
        ));
        let orphan_mem = "HashOwner,HashApp,SampleCount,AverageAllocatedMb,\
                          AverageAllocatedMb_pct50,AverageAllocatedMb_pct100\n\
                          oX,aX,10,96,90,128\n";
        assert!(matches!(
            AzureDataset::from_csv(INV, DUR, orphan_mem),
            Err(TraceError::Unjoined { .. })
        ));
    }

    #[test]
    fn duplicate_rows_are_rejected_in_strict_mode() {
        let dup_inv = format!("{INV}o1,a1,f1,http,4,0,2\n");
        assert!(matches!(
            AzureDataset::from_csv(&dup_inv, DUR, MEM),
            Err(TraceError::Parse {
                file: "invocations",
                ..
            })
        ));
        let dup_dur = format!("{DUR}o1,a1,f1,120,7,10,400,10,100,400\n");
        assert!(matches!(
            AzureDataset::from_csv(INV, &dup_dur, MEM),
            Err(TraceError::Parse {
                file: "durations",
                ..
            })
        ));
        let dup_mem = format!("{MEM}o1,a1,10,96,90,128\n");
        assert!(matches!(
            AzureDataset::from_csv(INV, DUR, &dup_mem),
            Err(TraceError::Parse { file: "memory", .. })
        ));
    }

    #[test]
    fn zero_count_duration_rows_are_rejected_in_strict_mode() {
        // A `Count == 0` row summarizes no executions; letting it
        // through would sample a sketch of nothing.
        let zero_count = DUR.replace("o1,a1,f1,120,7,", "o1,a1,f1,120,0,");
        let err = AzureDataset::from_csv(INV, &zero_count, MEM).unwrap_err();
        assert!(matches!(
            err,
            TraceError::Parse {
                file: "durations",
                ..
            }
        ));
        assert!(err.to_string().contains("Count is 0"), "{err}");
    }

    #[test]
    fn non_finite_duration_values_are_rejected_in_strict_mode() {
        for poison in ["NaN", "inf", "-inf"] {
            let bad = DUR.replace("10,100,400", &format!("10,{poison},400"));
            assert!(
                AzureDataset::from_csv(INV, &bad, MEM).is_err(),
                "{poison} slipped through"
            );
            let bad_avg = DUR.replace("o1,a1,f1,120,", &format!("o1,a1,f1,{poison},"));
            assert!(
                AzureDataset::from_csv(INV, &bad_avg, MEM).is_err(),
                "{poison} average slipped through"
            );
        }
    }

    #[test]
    fn format_drift_is_a_parse_error() {
        // A renamed column (the kind of silent drift the round-trip
        // check exists to catch).
        let drifted = INV.replace("Trigger", "TriggerKind");
        assert!(matches!(
            AzureDataset::from_csv(&drifted, DUR, MEM),
            Err(TraceError::Parse {
                file: "invocations",
                line: 1,
                ..
            })
        ));
        // Minute columns out of order.
        let shuffled = INV.replace(",1,2,3", ",1,3,2");
        assert!(AzureDataset::from_csv(&shuffled, DUR, MEM).is_err());
        // Unknown trigger value.
        let bad_trigger = INV.replace("http", "webhook");
        assert!(AzureDataset::from_csv(&bad_trigger, DUR, MEM).is_err());
        // Non-numeric count.
        let bad_count = INV.replace("4,0,2", "4,x,2");
        assert!(AzureDataset::from_csv(&bad_count, DUR, MEM).is_err());
        // Decreasing duration percentiles violate the sketch.
        let bad_sketch = DUR.replace("10,100,400", "400,100,10");
        assert!(AzureDataset::from_csv(INV, &bad_sketch, MEM).is_err());
    }

    #[test]
    fn trigger_parse_is_case_insensitive_and_total() {
        for trigger in Trigger::ALL {
            assert_eq!(Trigger::parse(trigger.as_str()), Some(trigger));
            assert_eq!(
                Trigger::parse(&trigger.as_str().to_ascii_uppercase()),
                Some(trigger)
            );
        }
        assert_eq!(Trigger::parse("webhook"), None);
        assert_eq!(Trigger::parse(""), None);
    }
}
