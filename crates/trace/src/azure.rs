//! Zero-dependency parser (and writer, for round-trip format checks)
//! for the **Azure Functions 2019 trace** format — the public dataset
//! released with *Serverless in the Wild* (ATC '20) and the de-facto
//! standard arrival-trace format serverless papers evaluate against.
//!
//! The dataset is three CSV families:
//!
//! * **invocations** — per function, invocation *counts per minute*
//!   (`HashOwner,HashApp,HashFunction,Trigger,1,2,…,N`);
//! * **durations** — per function, execution-time percentiles
//!   (`…,Average,Count,Minimum,Maximum,percentile_Average_0,…`);
//! * **memory** — per *app*, allocated-memory percentiles
//!   (`HashOwner,HashApp,SampleCount,AverageAllocatedMb,…`).
//!
//! Hash columns are opaque anonymized identifiers; they never contain
//! commas or quotes, so a plain comma split is a faithful parse and no
//! CSV dependency is needed.

use std::collections::HashMap;
use std::path::Path;

use crate::error::TraceError;
use crate::sketch::PercentileSketch;
use crate::Result;

/// File name the invocation-count CSV is distributed under (the full
/// dataset shards this per day: `invocations_per_function_md.anon.d01.csv`
/// and so on; the bundled fixture uses the unsharded name).
pub const INVOCATIONS_FILE: &str = "invocations_per_function.csv";
/// File name of the per-function duration-percentile CSV.
pub const DURATIONS_FILE: &str = "function_durations.csv";
/// File name of the per-app allocated-memory CSV.
pub const MEMORY_FILE: &str = "app_memory.csv";

const INVOCATIONS: &str = "invocations";
const DURATIONS: &str = "durations";
const MEMORY: &str = "memory";

/// What fires a function, as recorded in the trace's `Trigger` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// HTTP request.
    Http,
    /// Timer (cron-like schedule).
    Timer,
    /// Queue message.
    Queue,
    /// Storage event (blob created/changed).
    Storage,
    /// Event-grid / event-hub event.
    Event,
    /// Durable-functions orchestration activity.
    Orchestration,
    /// Everything else the dataset lumps together.
    Others,
}

impl Trigger {
    /// The trace's column spelling for this trigger.
    pub fn as_str(&self) -> &'static str {
        match self {
            Trigger::Http => "http",
            Trigger::Timer => "timer",
            Trigger::Queue => "queue",
            Trigger::Storage => "storage",
            Trigger::Event => "event",
            Trigger::Orchestration => "orchestration",
            Trigger::Others => "others",
        }
    }

    fn parse(text: &str) -> Option<Trigger> {
        Some(match text.to_ascii_lowercase().as_str() {
            "http" => Trigger::Http,
            "timer" => Trigger::Timer,
            "queue" => Trigger::Queue,
            "storage" => Trigger::Storage,
            "event" => Trigger::Event,
            "orchestration" => Trigger::Orchestration,
            "others" => Trigger::Others,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One function of the trace: its identity, per-minute invocation
/// counts and duration distribution (the invocations and durations
/// files joined on `owner/app/function`).
#[derive(Debug, Clone, PartialEq)]
pub struct AzureFunction {
    /// Anonymized owning-customer hash (`HashOwner`).
    pub owner: String,
    /// Anonymized application hash (`HashApp`); the trace's billing
    /// and memory unit.
    pub app: String,
    /// Anonymized function hash (`HashFunction`).
    pub function: String,
    /// What fires the function.
    pub trigger: Trigger,
    /// Invocations per minute, one entry per trace minute.
    pub counts: Vec<u32>,
    /// Mean execution time, ms (the durations file's `Average`).
    pub mean_duration_ms: f64,
    /// How many executions the duration statistics summarize.
    pub sampled_executions: u64,
    /// Fastest sampled execution, ms.
    pub min_duration_ms: f64,
    /// Slowest sampled execution, ms.
    pub max_duration_ms: f64,
    /// Execution-time percentile sketch, ms.
    pub duration_ms: PercentileSketch,
}

impl AzureFunction {
    /// `owner/app/function` — the join key, also used in diagnostics.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.owner, self.app, self.function)
    }

    /// Total invocations across every minute.
    pub fn total_invocations(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }
}

/// One application's allocated-memory distribution (the memory file;
/// memory is metered per app, not per function).
#[derive(Debug, Clone, PartialEq)]
pub struct AzureApp {
    /// Anonymized owning-customer hash.
    pub owner: String,
    /// Anonymized application hash.
    pub app: String,
    /// How many samples the memory statistics summarize.
    pub sample_count: u64,
    /// Mean allocated memory, MB (`AverageAllocatedMb`).
    pub mean_allocated_mb: f64,
    /// Allocated-memory percentile sketch, MB.
    pub allocated_mb: PercentileSketch,
}

/// A parsed Azure Functions trace: every function with its per-minute
/// counts and duration sketch, plus per-app memory statistics.
///
/// # Examples
///
/// ```
/// let dataset = litmus_trace::fixture::dataset();
/// assert!(dataset.total_invocations() > 0);
/// for function in dataset.functions() {
///     assert_eq!(function.counts.len(), dataset.minutes());
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AzureDataset {
    functions: Vec<AzureFunction>,
    apps: Vec<AzureApp>,
    minutes: usize,
}

impl AzureDataset {
    /// Parses the three CSV texts into one joined dataset.
    ///
    /// Strictness is deliberate — the fixture round-trip in CI leans on
    /// it to catch format drift early:
    ///
    /// * headers must match the published format exactly (minute
    ///   columns `1,2,…,N` in order, percentile columns in ascending
    ///   order);
    /// * every invocations row must join a durations row and vice
    ///   versa ([`TraceError::Unjoined`] otherwise);
    /// * memory rows are optional per app (the real dataset does not
    ///   cover every app) but must join an app that invokes something.
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] / [`TraceError::Unjoined`] as above.
    pub fn from_csv(invocations: &str, durations: &str, memory: &str) -> Result<Self> {
        let (minutes, inv_rows) = parse_invocations(invocations)?;
        let dur_rows = parse_durations(durations)?;
        let apps = parse_memory(memory)?;

        let mut by_key: HashMap<(String, String, String), DurationRow> = HashMap::new();
        for row in dur_rows {
            let key = (row.owner.clone(), row.app.clone(), row.function.clone());
            if by_key.insert(key, row).is_some() {
                return Err(TraceError::Parse {
                    file: DURATIONS,
                    line: 0,
                    message: "duplicate function row".into(),
                });
            }
        }

        let mut functions = Vec::with_capacity(inv_rows.len());
        for row in inv_rows {
            let key = (row.owner.clone(), row.app.clone(), row.function.clone());
            let durations = by_key.remove(&key).ok_or_else(|| TraceError::Unjoined {
                file: DURATIONS,
                key: format!("{}/{}/{}", row.owner, row.app, row.function),
            })?;
            functions.push(AzureFunction {
                owner: row.owner,
                app: row.app,
                function: row.function,
                trigger: row.trigger,
                counts: row.counts,
                mean_duration_ms: durations.average,
                sampled_executions: durations.count,
                min_duration_ms: durations.minimum,
                max_duration_ms: durations.maximum,
                duration_ms: durations.sketch,
            });
        }
        if let Some(leftover) = by_key.into_keys().next() {
            return Err(TraceError::Unjoined {
                file: INVOCATIONS,
                key: format!("{}/{}/{}", leftover.0, leftover.1, leftover.2),
            });
        }
        let invoking_apps: std::collections::HashSet<(&str, &str)> = functions
            .iter()
            .map(|f| (f.owner.as_str(), f.app.as_str()))
            .collect();
        for app in &apps {
            if !invoking_apps.contains(&(app.owner.as_str(), app.app.as_str())) {
                return Err(TraceError::Unjoined {
                    file: INVOCATIONS,
                    key: format!("{}/{}", app.owner, app.app),
                });
            }
        }
        Ok(AzureDataset {
            functions,
            apps,
            minutes,
        })
    }

    /// Reads and parses `invocations_per_function.csv`,
    /// `function_durations.csv` and `app_memory.csv` from `dir`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on read failures, plus everything
    /// [`AzureDataset::from_csv`] rejects.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let read = |name: &str| std::fs::read_to_string(dir.join(name));
        AzureDataset::from_csv(
            &read(INVOCATIONS_FILE)?,
            &read(DURATIONS_FILE)?,
            &read(MEMORY_FILE)?,
        )
    }

    /// The functions, in invocations-file row order.
    pub fn functions(&self) -> &[AzureFunction] {
        &self.functions
    }

    /// The apps with memory statistics, in memory-file row order.
    pub fn apps(&self) -> &[AzureApp] {
        &self.apps
    }

    /// How many trace minutes the counts cover.
    pub fn minutes(&self) -> usize {
        self.minutes
    }

    /// Whether the dataset has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Total invocations across every function and minute.
    pub fn total_invocations(&self) -> u64 {
        self.functions
            .iter()
            .map(AzureFunction::total_invocations)
            .sum()
    }

    /// Memory statistics of `owner`'s `app`, when the trace has them.
    pub fn memory_of(&self, owner: &str, app: &str) -> Option<&AzureApp> {
        self.apps.iter().find(|a| a.owner == owner && a.app == app)
    }

    /// Serializes back to the invocations CSV (exact header, rows in
    /// dataset order) — the other half of the round-trip format check.
    pub fn to_invocations_csv(&self) -> String {
        let mut out = String::from("HashOwner,HashApp,HashFunction,Trigger");
        for minute in 1..=self.minutes {
            out.push(',');
            out.push_str(&minute.to_string());
        }
        out.push('\n');
        for f in &self.functions {
            out.push_str(&format!(
                "{},{},{},{}",
                f.owner, f.app, f.function, f.trigger
            ));
            for count in &f.counts {
                out.push(',');
                out.push_str(&count.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Serializes back to the durations CSV.
    pub fn to_durations_csv(&self) -> String {
        let mut out = String::from("HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum");
        let pcts: Vec<f64> = self
            .functions
            .first()
            .map(|f| f.duration_ms.points().iter().map(|&(p, _)| p).collect())
            .unwrap_or_default();
        for pct in &pcts {
            out.push_str(&format!(",percentile_Average_{pct}"));
        }
        out.push('\n');
        for f in &self.functions {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}",
                f.owner,
                f.app,
                f.function,
                f.mean_duration_ms,
                f.sampled_executions,
                f.min_duration_ms,
                f.max_duration_ms
            ));
            for &(_, value) in f.duration_ms.points() {
                out.push(',');
                out.push_str(&value.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Serializes back to the memory CSV.
    pub fn to_memory_csv(&self) -> String {
        let mut out = String::from("HashOwner,HashApp,SampleCount,AverageAllocatedMb");
        let pcts: Vec<f64> = self
            .apps
            .first()
            .map(|a| a.allocated_mb.points().iter().map(|&(p, _)| p).collect())
            .unwrap_or_default();
        for pct in &pcts {
            out.push_str(&format!(",AverageAllocatedMb_pct{pct}"));
        }
        out.push('\n');
        for a in &self.apps {
            out.push_str(&format!(
                "{},{},{},{}",
                a.owner, a.app, a.sample_count, a.mean_allocated_mb
            ));
            for &(_, value) in a.allocated_mb.points() {
                out.push(',');
                out.push_str(&value.to_string());
            }
            out.push('\n');
        }
        out
    }
}

struct InvocationRow {
    owner: String,
    app: String,
    function: String,
    trigger: Trigger,
    counts: Vec<u32>,
}

struct DurationRow {
    owner: String,
    app: String,
    function: String,
    average: f64,
    count: u64,
    minimum: f64,
    maximum: f64,
    sketch: PercentileSketch,
}

fn parse_error(file: &'static str, line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Parse {
        file,
        line,
        message: message.into(),
    }
}

/// Non-empty lines with their 1-based line numbers.
fn rows(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(idx, line)| (idx + 1, line.trim_end_matches('\r')))
        .filter(|(_, line)| !line.trim().is_empty())
}

fn fields(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

fn expect_prefix(
    file: &'static str,
    header: &[&str],
    expected: &[&str],
) -> std::result::Result<(), TraceError> {
    if header.len() < expected.len() {
        return Err(parse_error(
            file,
            1,
            format!(
                "header has {} columns, expected at least {}",
                header.len(),
                expected.len()
            ),
        ));
    }
    for (got, want) in header.iter().zip(expected) {
        if got != want {
            return Err(parse_error(
                file,
                1,
                format!("header column {got:?}, expected {want:?}"),
            ));
        }
    }
    Ok(())
}

fn parse_f64(file: &'static str, line: usize, text: &str, what: &str) -> Result<f64> {
    let value: f64 = text
        .parse()
        .map_err(|_| parse_error(file, line, format!("{what}: not a number: {text:?}")))?;
    if !value.is_finite() {
        return Err(parse_error(file, line, format!("{what}: non-finite value")));
    }
    Ok(value)
}

fn parse_invocations(text: &str) -> Result<(usize, Vec<InvocationRow>)> {
    let mut rows = rows(text);
    let (_, header) = rows
        .next()
        .ok_or_else(|| parse_error(INVOCATIONS, 1, "empty file"))?;
    let header = fields(header);
    expect_prefix(
        INVOCATIONS,
        &header,
        &["HashOwner", "HashApp", "HashFunction", "Trigger"],
    )?;
    let minutes = header.len() - 4;
    for (idx, col) in header[4..].iter().enumerate() {
        if col.parse::<usize>() != Ok(idx + 1) {
            return Err(parse_error(
                INVOCATIONS,
                1,
                format!("minute column {} is {col:?}, expected {}", idx + 5, idx + 1),
            ));
        }
    }

    let mut parsed = Vec::new();
    for (line, row) in rows {
        let cells = fields(row);
        if cells.len() != 4 + minutes {
            return Err(parse_error(
                INVOCATIONS,
                line,
                format!("{} columns, expected {}", cells.len(), 4 + minutes),
            ));
        }
        if cells[..3].iter().any(|cell| cell.is_empty()) {
            return Err(parse_error(INVOCATIONS, line, "empty identity hash"));
        }
        let trigger = Trigger::parse(cells[3]).ok_or_else(|| {
            parse_error(INVOCATIONS, line, format!("unknown trigger {:?}", cells[3]))
        })?;
        let mut counts = Vec::with_capacity(minutes);
        for cell in &cells[4..] {
            counts.push(cell.parse::<u32>().map_err(|_| {
                parse_error(INVOCATIONS, line, format!("bad minute count {cell:?}"))
            })?);
        }
        parsed.push(InvocationRow {
            owner: cells[0].to_owned(),
            app: cells[1].to_owned(),
            function: cells[2].to_owned(),
            trigger,
            counts,
        });
    }
    Ok((minutes, parsed))
}

fn percentile_columns(
    file: &'static str,
    header: &[&str],
    fixed: usize,
    prefix: &str,
) -> Result<Vec<f64>> {
    let mut pcts = Vec::new();
    for (idx, col) in header[fixed..].iter().enumerate() {
        let suffix = col.strip_prefix(prefix).ok_or_else(|| {
            parse_error(
                file,
                1,
                format!(
                    "column {} is {col:?}, expected a {prefix}* percentile",
                    fixed + idx + 1
                ),
            )
        })?;
        let pct = parse_f64(file, 1, suffix, "percentile")?;
        if let Some(&last) = pcts.last() {
            if pct <= last {
                return Err(parse_error(file, 1, "percentile columns must ascend"));
            }
        }
        pcts.push(pct);
    }
    if pcts.is_empty() {
        return Err(parse_error(file, 1, "no percentile columns"));
    }
    Ok(pcts)
}

fn parse_durations(text: &str) -> Result<Vec<DurationRow>> {
    let mut rows = rows(text);
    let (_, header) = rows
        .next()
        .ok_or_else(|| parse_error(DURATIONS, 1, "empty file"))?;
    let header = fields(header);
    const FIXED: [&str; 7] = [
        "HashOwner",
        "HashApp",
        "HashFunction",
        "Average",
        "Count",
        "Minimum",
        "Maximum",
    ];
    expect_prefix(DURATIONS, &header, &FIXED)?;
    let pcts = percentile_columns(DURATIONS, &header, FIXED.len(), "percentile_Average_")?;

    let mut parsed = Vec::new();
    for (line, row) in rows {
        let cells = fields(row);
        if cells.len() != FIXED.len() + pcts.len() {
            return Err(parse_error(
                DURATIONS,
                line,
                format!(
                    "{} columns, expected {}",
                    cells.len(),
                    FIXED.len() + pcts.len()
                ),
            ));
        }
        let mut points = Vec::with_capacity(pcts.len());
        for (pct, cell) in pcts.iter().zip(&cells[FIXED.len()..]) {
            points.push((
                *pct,
                parse_f64(DURATIONS, line, cell, "duration percentile")?,
            ));
        }
        let sketch = PercentileSketch::new(points)
            .map_err(|e| parse_error(DURATIONS, line, e.to_string()))?;
        parsed.push(DurationRow {
            owner: cells[0].to_owned(),
            app: cells[1].to_owned(),
            function: cells[2].to_owned(),
            average: parse_f64(DURATIONS, line, cells[3], "Average")?,
            count: cells[4]
                .parse()
                .map_err(|_| parse_error(DURATIONS, line, format!("bad Count {:?}", cells[4])))?,
            minimum: parse_f64(DURATIONS, line, cells[5], "Minimum")?,
            maximum: parse_f64(DURATIONS, line, cells[6], "Maximum")?,
            sketch,
        });
    }
    Ok(parsed)
}

fn parse_memory(text: &str) -> Result<Vec<AzureApp>> {
    let mut rows = rows(text);
    let (_, header) = rows
        .next()
        .ok_or_else(|| parse_error(MEMORY, 1, "empty file"))?;
    let header = fields(header);
    const FIXED: [&str; 4] = ["HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb"];
    expect_prefix(MEMORY, &header, &FIXED)?;
    let pcts = percentile_columns(MEMORY, &header, FIXED.len(), "AverageAllocatedMb_pct")?;

    let mut parsed = Vec::new();
    for (line, row) in rows {
        let cells = fields(row);
        if cells.len() != FIXED.len() + pcts.len() {
            return Err(parse_error(
                MEMORY,
                line,
                format!(
                    "{} columns, expected {}",
                    cells.len(),
                    FIXED.len() + pcts.len()
                ),
            ));
        }
        let mut points = Vec::with_capacity(pcts.len());
        for (pct, cell) in pcts.iter().zip(&cells[FIXED.len()..]) {
            points.push((*pct, parse_f64(MEMORY, line, cell, "memory percentile")?));
        }
        let sketch =
            PercentileSketch::new(points).map_err(|e| parse_error(MEMORY, line, e.to_string()))?;
        parsed.push(AzureApp {
            owner: cells[0].to_owned(),
            app: cells[1].to_owned(),
            sample_count: cells[2].parse().map_err(|_| {
                parse_error(MEMORY, line, format!("bad SampleCount {:?}", cells[2]))
            })?,
            mean_allocated_mb: parse_f64(MEMORY, line, cells[3], "AverageAllocatedMb")?,
            allocated_mb: sketch,
        });
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n\
                       o1,a1,f1,http,4,0,2\n\
                       o1,a1,f2,timer,1,1,1\n";
    const DUR: &str = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,\
                       percentile_Average_0,percentile_Average_50,percentile_Average_100\n\
                       o1,a1,f1,120,7,10,400,10,100,400\n\
                       o1,a1,f2,60000,3,50000,80000,50000,60000,80000\n";
    const MEM: &str = "HashOwner,HashApp,SampleCount,AverageAllocatedMb,\
                       AverageAllocatedMb_pct50,AverageAllocatedMb_pct100\n\
                       o1,a1,10,96,90,128\n";

    #[test]
    fn joined_parse_round_trips() {
        let dataset = AzureDataset::from_csv(INV, DUR, MEM).unwrap();
        assert_eq!(dataset.minutes(), 3);
        assert_eq!(dataset.functions().len(), 2);
        assert_eq!(dataset.total_invocations(), 9);
        let f1 = &dataset.functions()[0];
        assert_eq!(f1.trigger, Trigger::Http);
        assert_eq!(f1.counts, vec![4, 0, 2]);
        assert_eq!(f1.duration_ms.median(), 100.0);
        assert!(dataset.memory_of("o1", "a1").is_some());
        assert!(dataset.memory_of("o1", "nope").is_none());

        let reparsed = AzureDataset::from_csv(
            &dataset.to_invocations_csv(),
            &dataset.to_durations_csv(),
            &dataset.to_memory_csv(),
        )
        .unwrap();
        assert_eq!(dataset, reparsed);
    }

    #[test]
    fn unjoined_functions_fail_fast() {
        let extra_inv = format!("{INV}o2,a2,f9,queue,1,1,1\n");
        assert!(matches!(
            AzureDataset::from_csv(&extra_inv, DUR, MEM),
            Err(TraceError::Unjoined {
                file: "durations",
                ..
            })
        ));
        let extra_dur = format!("{DUR}o2,a2,f9,5,1,5,5,5,5,5\n");
        assert!(matches!(
            AzureDataset::from_csv(INV, &extra_dur, MEM),
            Err(TraceError::Unjoined {
                file: "invocations",
                ..
            })
        ));
        let orphan_mem = "HashOwner,HashApp,SampleCount,AverageAllocatedMb,\
                          AverageAllocatedMb_pct50,AverageAllocatedMb_pct100\n\
                          oX,aX,10,96,90,128\n";
        assert!(matches!(
            AzureDataset::from_csv(INV, DUR, orphan_mem),
            Err(TraceError::Unjoined { .. })
        ));
    }

    #[test]
    fn format_drift_is_a_parse_error() {
        // A renamed column (the kind of silent drift the round-trip
        // check exists to catch).
        let drifted = INV.replace("Trigger", "TriggerKind");
        assert!(matches!(
            AzureDataset::from_csv(&drifted, DUR, MEM),
            Err(TraceError::Parse {
                file: "invocations",
                line: 1,
                ..
            })
        ));
        // Minute columns out of order.
        let shuffled = INV.replace(",1,2,3", ",1,3,2");
        assert!(AzureDataset::from_csv(&shuffled, DUR, MEM).is_err());
        // Unknown trigger value.
        let bad_trigger = INV.replace("http", "webhook");
        assert!(AzureDataset::from_csv(&bad_trigger, DUR, MEM).is_err());
        // Non-numeric count.
        let bad_count = INV.replace("4,0,2", "4,x,2");
        assert!(AzureDataset::from_csv(&bad_count, DUR, MEM).is_err());
        // Decreasing duration percentiles violate the sketch.
        let bad_sketch = DUR.replace("10,100,400", "400,100,10");
        assert!(AzureDataset::from_csv(INV, &bad_sketch, MEM).is_err());
    }
}
