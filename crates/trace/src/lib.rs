//! Real-world trace ingestion, characterization and streaming replay
//! for the Litmus reproduction — the single front door for workloads.
//!
//! The fairness claims the repo reproduces (and the scheduling/billing
//! extensions built on them) are only as credible as the arrival
//! processes driving them. This crate replaces purely synthetic
//! shapes with the **Azure Functions 2019 trace** format, end to end:
//!
//! * [`AzureDataset`] — a zero-dependency parser (and writer, for the
//!   CI round-trip format check) for the trace's three CSV families:
//!   per-function invocations-per-minute counts, per-function duration
//!   percentiles, per-app allocated-memory percentiles. A bundled
//!   anonymized mini-fixture ([`fixture::dataset`]) keeps everything
//!   runnable offline. [`AzureDataset::from_dir`] discovers and merges
//!   the real download's per-family shards, and [`IngestMode::Lossy`]
//!   tolerates the real dataset's incompleteness (functions missing
//!   duration/memory rows) by counting-and-skipping or imputing, with
//!   the accounting surfaced in an [`IngestReport`];
//! * [`AzureReplaySource`] — a deterministic, seeded expander from
//!   minute buckets to per-invocation events: apps become
//!   [`litmus_platform::TenantId`]s, functions map to
//!   [`litmus_workloads::suite::TenantClass`] pools by their
//!   duration/memory character, each invocation's duration quantile is
//!   drawn from the function's [`PercentileSketch`] and picks a
//!   matching-rank benchmark body. It streams minute by minute, so
//!   replay memory tracks the busiest minute, never the trace length;
//! * [`TraceTransform`] — order-preserving stream rewrites
//!   (time-compression, rate-scaling, tenant subsampling, window
//!   slicing) composable over any [`litmus_platform::TraceSource`];
//! * [`TraceStats`] — one-pass characterization: inter-arrival CV,
//!   burstiness index, per-tenant concurrency envelopes and the Gini
//!   coefficient of invocation share.
//!
//! Streaming and materialized replays are bit-identical at the same
//! seed: [`AzureDataset::expand`] is exactly [`AzureDataset::source`]
//! collected, and both the platform's `TraceDriver` and the cluster's
//! `ClusterDriver` accept either form through the shared
//! [`litmus_platform::TraceSource`] trait.
//!
//! # Examples
//!
//! Expand the bundled fixture, compress it for a quick replay, and
//! characterize what the cluster is about to serve:
//!
//! ```
//! use litmus_trace::{ExpandConfig, IntraMinute, TraceStats};
//!
//! let dataset = litmus_trace::fixture::dataset();
//! let trace = dataset
//!     .expand(ExpandConfig::new(42).minute_ms(500).placement(IntraMinute::Poisson))
//!     .unwrap();
//! assert_eq!(trace.len() as u64, dataset.total_invocations());
//!
//! let stats = TraceStats::from_trace(&trace, 500);
//! assert_eq!(stats.tenants.len(), 6);
//! println!("{stats}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod azure;
mod error;
mod expand;
mod ingest;
mod shard;
mod sketch;
mod stats;
#[doc(hidden)]
pub mod test_support;
mod transform;

pub use azure::{
    AzureApp, AzureDataset, AzureFunction, Trigger, DURATIONS_FILE, INVOCATIONS_FILE, MEMORY_FILE,
};
pub use error::TraceError;
pub use expand::{
    classify_function, multi_day_source, union_assignments, AzureReplaySource, ExpandConfig,
    IntraMinute, TenantAssignment,
};
pub use ingest::{IngestMode, IngestReport, LossyIngest};
pub use sketch::PercentileSketch;
pub use stats::{TenantEnvelope, TraceStats};
pub use transform::{apply, TraceTransform, TransformedSource};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TraceError>;

/// The bundled anonymized mini-fixture: a 15-minute, 9-function,
/// 6-app slice shaped like the real dataset (steady HTTP traffic, a
/// diurnal swell, queue bursts, a once-a-minute timer, a heavy-memory
/// analytics app), in the exact published CSV format.
pub mod fixture {
    use crate::azure::AzureDataset;

    /// The invocations-per-minute CSV text.
    pub const INVOCATIONS_CSV: &str = include_str!("../fixtures/invocations_per_function.csv");
    /// The duration-percentiles CSV text.
    pub const DURATIONS_CSV: &str = include_str!("../fixtures/function_durations.csv");
    /// The app-memory CSV text.
    pub const MEMORY_CSV: &str = include_str!("../fixtures/app_memory.csv");

    /// Parses the bundled fixture (infallible: the round-trip test in
    /// CI keeps the fixture and the parser in lock-step).
    pub fn dataset() -> AzureDataset {
        AzureDataset::from_csv(INVOCATIONS_CSV, DURATIONS_CSV, MEMORY_CSV)
            .expect("bundled fixture parses") // lint:allow(panic-in-lib): fixture is compiled in and round-tripped by CI tests
    }
}
