//! Joining the three Azure CSV families into an [`AzureDataset`],
//! strictly or lossily.
//!
//! The bundled fixture (and the CI round-trip check) use the strict
//! path: any unjoined, duplicated or degenerate row is an error. The
//! *real* dataset cannot be ingested that way — per *Serverless in the
//! Wild*'s release notes, many functions never get a duration or
//! memory row (sampling windows, deleted apps), and some duration rows
//! summarize zero executions. [`IngestMode::Lossy`] handles all of
//! that by **counting and skipping** (or imputing) instead of
//! erroring, and reports exactly what happened in an [`IngestReport`]
//! whose counters are conserved: every input row is either kept or
//! attributed to one skip category.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use crate::azure::{
    self, parse_durations, parse_invocations, parse_memory, AzureDataset, AzureFunction,
    DurationRow, InvocationRow, Trigger, DURATIONS, INVOCATIONS, MEMORY,
};
use crate::error::TraceError;
use crate::shard::LineSource;
use crate::sketch::PercentileSketch;
use crate::Result;

/// What to do with an invocations row whose duration row is missing
/// (or was itself skipped as degenerate) under [`IngestMode::Lossy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossyIngest {
    /// Drop the function and count it — the conservative default:
    /// replayed traffic only ever carries measured durations.
    #[default]
    Skip,
    /// Keep the function, imputing its duration statistics from the
    /// pointwise median of its *app*'s measured duration rows, falling
    /// back to the median of rows sharing its *trigger*, and dropping
    /// it (counted) only when neither pool has a single row. Imputed
    /// functions never donate to later imputations.
    ImputeMedians,
}

/// How ingestion treats rows the strict parser rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Everything must parse and join — [`AzureDataset::from_csv`]'s
    /// behavior, and the default.
    #[default]
    Strict,
    /// Count-and-skip degenerate rows (`Count == 0`, non-finite
    /// values, duplicates, orphans) and apply the given policy to
    /// functions missing duration rows. Structural damage — malformed
    /// headers, ragged rows — is still an error: lossiness is for
    /// sparse data, not corrupt files.
    Lossy(LossyIngest),
}

impl IngestMode {
    pub(crate) fn is_lossy(self) -> bool {
        matches!(self, IngestMode::Lossy(_))
    }
}

/// Per-category accounting of one ingestion — what was kept, skipped
/// and imputed, per CSV family.
///
/// The counters are conserved, and
/// [`IngestReport::is_balanced`] checks the identities:
///
/// * `invocation_rows == functions + invalid_invocations_skipped +
///   duplicate_invocations_skipped + missing_duration_skipped +
///   unimputable_skipped` (where `functions` includes the imputed
///   ones);
/// * `duration_rows == (functions - imputed()) +
///   zero_count_durations_skipped + invalid_durations_skipped +
///   duplicate_durations_skipped + orphan_durations_skipped`;
/// * `memory_rows == apps + invalid_memory_skipped +
///   duplicate_memory_skipped + orphan_memory_skipped`.
///
/// Strict ingestion always reports zero for every skip/impute counter
/// (anything that would increment one is an error instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Data rows in the invocations file(s), header excluded.
    pub invocation_rows: u64,
    /// Data rows in the durations file(s).
    pub duration_rows: u64,
    /// Data rows in the memory file(s).
    pub memory_rows: u64,
    /// Functions in the dataset (measured + imputed).
    pub functions: u64,
    /// Apps with memory statistics in the dataset.
    pub apps: u64,
    /// Functions whose duration statistics were imputed from their
    /// app's measured rows.
    pub imputed_from_app: u64,
    /// Functions imputed from rows sharing their trigger (their app
    /// had no measured row).
    pub imputed_from_trigger: u64,
    /// Functions dropped for lack of a duration row under
    /// [`LossyIngest::Skip`].
    pub missing_duration_skipped: u64,
    /// Functions dropped under [`LossyIngest::ImputeMedians`] because
    /// no app or trigger pool had a measured row to impute from.
    pub unimputable_skipped: u64,
    /// Invocations rows dropped for value-level damage (unknown
    /// trigger, unparseable counts).
    pub invalid_invocations_skipped: u64,
    /// Duration rows dropped because `Count == 0`.
    pub zero_count_durations_skipped: u64,
    /// Duration rows dropped for value-level damage (non-finite or
    /// unparseable numbers, degenerate sketches).
    pub invalid_durations_skipped: u64,
    /// Memory rows dropped for value-level damage.
    pub invalid_memory_skipped: u64,
    /// Invocations rows dropped as duplicates of an earlier key (first
    /// row wins).
    pub duplicate_invocations_skipped: u64,
    /// Duration rows dropped as duplicates of an earlier key.
    pub duplicate_durations_skipped: u64,
    /// Memory rows dropped as duplicates of an earlier key.
    pub duplicate_memory_skipped: u64,
    /// Duration rows dropped because no invocations row carries their
    /// key.
    pub orphan_durations_skipped: u64,
    /// Memory rows dropped because their app invokes nothing.
    pub orphan_memory_skipped: u64,
    /// Shards the invocations family was merged from (1 when parsed
    /// from a single text; set by [`AzureDataset::from_dir_with`]).
    pub invocation_shards: u64,
    /// Shards the durations family was merged from.
    pub duration_shards: u64,
    /// Shards the memory family was merged from.
    pub memory_shards: u64,
}

impl IngestReport {
    /// Functions whose duration statistics were imputed (either pool).
    pub fn imputed(&self) -> u64 {
        self.imputed_from_app + self.imputed_from_trigger
    }

    /// Rows dropped across every category and family.
    pub fn dropped(&self) -> u64 {
        self.missing_duration_skipped
            + self.unimputable_skipped
            + self.invalid_invocations_skipped
            + self.zero_count_durations_skipped
            + self.invalid_durations_skipped
            + self.invalid_memory_skipped
            + self.duplicate_invocations_skipped
            + self.duplicate_durations_skipped
            + self.duplicate_memory_skipped
            + self.orphan_durations_skipped
            + self.orphan_memory_skipped
    }

    /// Whether every input row is accounted for — kept, imputed or
    /// attributed to exactly one skip category (the conservation
    /// identities in the type docs). Always true for reports produced
    /// by this crate; exposed so property tests (and callers stitching
    /// reports together) can assert it.
    pub fn is_balanced(&self) -> bool {
        // checked_sub, not `-`: a hand-stitched report can claim more
        // imputations than functions, and that is unbalanced, not a
        // panic.
        let Some(measured) = self.functions.checked_sub(self.imputed()) else {
            return false;
        };
        let invocations = self.functions
            + self.invalid_invocations_skipped
            + self.duplicate_invocations_skipped
            + self.missing_duration_skipped
            + self.unimputable_skipped;
        let durations = measured
            + self.zero_count_durations_skipped
            + self.invalid_durations_skipped
            + self.duplicate_durations_skipped
            + self.orphan_durations_skipped;
        let memory = self.apps
            + self.invalid_memory_skipped
            + self.duplicate_memory_skipped
            + self.orphan_memory_skipped;
        self.invocation_rows == invocations
            && self.duration_rows == durations
            && self.memory_rows == memory
    }
}

impl std::fmt::Display for IngestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ingested {} functions / {} apps from {}+{}+{} rows \
             ({}/{}/{} shards)",
            self.functions,
            self.apps,
            self.invocation_rows,
            self.duration_rows,
            self.memory_rows,
            self.invocation_shards,
            self.duration_shards,
            self.memory_shards,
        )?;
        writeln!(
            f,
            "  imputed: {} from app medians, {} from trigger medians",
            self.imputed_from_app, self.imputed_from_trigger
        )?;
        write!(
            f,
            "  skipped: {} missing-duration, {} unimputable, \
             {} zero-count, {} invalid ({}i/{}d/{}m), \
             {} duplicate ({}i/{}d/{}m), {} orphan ({}d/{}m)",
            self.missing_duration_skipped,
            self.unimputable_skipped,
            self.zero_count_durations_skipped,
            self.invalid_invocations_skipped
                + self.invalid_durations_skipped
                + self.invalid_memory_skipped,
            self.invalid_invocations_skipped,
            self.invalid_durations_skipped,
            self.invalid_memory_skipped,
            self.duplicate_invocations_skipped
                + self.duplicate_durations_skipped
                + self.duplicate_memory_skipped,
            self.duplicate_invocations_skipped,
            self.duplicate_durations_skipped,
            self.duplicate_memory_skipped,
            self.orphan_durations_skipped + self.orphan_memory_skipped,
            self.orphan_durations_skipped,
            self.orphan_memory_skipped,
        )
    }
}

/// Lower median of `values` — deterministic and always one of the
/// inputs, so imputed statistics are values the trace actually
/// published. `values` must be non-empty.
fn lower_median(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    values[(values.len() - 1) / 2]
}

/// Pointwise lower-median sketch over donor functions' sketches (all
/// donors share the family's percentile grid), plus median scalar
/// statistics. Donors must be non-empty.
fn impute_from(donors: &[&AzureFunction]) -> (f64, u64, f64, f64, PercentileSketch) {
    let grid: Vec<f64> = donors[0]
        .duration_ms
        .points()
        .iter()
        .map(|&(pct, _)| pct)
        .collect();
    let points: Vec<(f64, f64)> = grid
        .iter()
        .enumerate()
        .map(|(idx, &pct)| {
            (
                pct,
                lower_median(
                    donors
                        .iter()
                        .map(|donor| donor.duration_ms.points()[idx].1)
                        .collect(),
                ),
            )
        })
        .collect();
    let sketch = PercentileSketch::new(points)
        .expect("pointwise medians of valid sketches form a valid sketch"); // lint:allow(panic-in-lib): monotone inputs keep pointwise medians monotone
    let average = lower_median(donors.iter().map(|d| d.mean_duration_ms).collect());
    let count = lower_median(donors.iter().map(|d| d.sampled_executions as f64).collect()) as u64;
    let minimum = lower_median(donors.iter().map(|d| d.min_duration_ms).collect());
    let maximum = lower_median(donors.iter().map(|d| d.max_duration_ms).collect());
    (average, count, minimum, maximum, sketch)
}

fn join(row: InvocationRow, durations: DurationRow) -> AzureFunction {
    AzureFunction {
        owner: row.owner,
        app: row.app,
        function: row.function,
        trigger: row.trigger,
        counts: row.counts,
        mean_duration_ms: durations.average,
        sampled_executions: durations.count,
        min_duration_ms: durations.minimum,
        max_duration_ms: durations.maximum,
        duration_ms: durations.sketch,
    }
}

/// Parses and joins the three CSV families under `mode`, pulling rows
/// through [`LineSource`]s so in-memory texts and chained shard
/// readers share one ingestion path: [`AzureDataset::from_csv`],
/// [`AzureDataset::from_csv_with`] and the `from_dir` pair all land
/// here.
pub(crate) fn ingest(
    invocations: &mut dyn LineSource,
    durations: &mut dyn LineSource,
    memory: &mut dyn LineSource,
    mode: IngestMode,
) -> Result<(AzureDataset, IngestReport)> {
    let lossy = mode.is_lossy();
    let (minutes, inv) = parse_invocations(invocations, lossy)?;
    let dur = parse_durations(durations, lossy)?;
    let mem = parse_memory(memory, lossy)?;

    let mut report = IngestReport {
        invocation_rows: inv.total_rows,
        duration_rows: dur.total_rows,
        memory_rows: mem.total_rows,
        invalid_invocations_skipped: inv.invalid_skipped,
        zero_count_durations_skipped: dur.zero_count_skipped,
        invalid_durations_skipped: dur.invalid_skipped,
        invalid_memory_skipped: mem.invalid_skipped,
        // One text per family here; `from_dir_with` overwrites these
        // with the real shard counts it merged.
        invocation_shards: 1,
        duration_shards: 1,
        memory_shards: 1,
        ..IngestReport::default()
    };

    // Duration rows by key, first row winning on duplicates.
    let mut by_key: BTreeMap<(String, String, String), DurationRow> = BTreeMap::new();
    for row in dur.rows {
        let key = (row.owner.clone(), row.app.clone(), row.function.clone());
        match by_key.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(row);
            }
            Entry::Occupied(_) if lossy => report.duplicate_durations_skipped += 1,
            Entry::Occupied(_) => {
                return Err(azure::parse_error(
                    DURATIONS,
                    0,
                    format!(
                        "duplicate function row {}/{}/{}",
                        row.owner, row.app, row.function
                    ),
                ));
            }
        }
    }

    // First pass: join what joins, set aside the misses.
    let mut functions: Vec<AzureFunction> = Vec::with_capacity(inv.rows.len());
    let mut misses: Vec<InvocationRow> = Vec::new();
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    for row in inv.rows {
        let key = (row.owner.clone(), row.app.clone(), row.function.clone());
        if !seen.insert(key.clone()) {
            if lossy {
                report.duplicate_invocations_skipped += 1;
                continue;
            }
            return Err(azure::parse_error(
                INVOCATIONS,
                0,
                format!(
                    "duplicate function row {}/{}/{}",
                    row.owner, row.app, row.function
                ),
            ));
        }
        match by_key.remove(&key) {
            Some(durations) => functions.push(join(row, durations)),
            None => misses.push(row),
        }
    }

    // Misses: strict errors on the first; lossy skips or imputes.
    match mode {
        IngestMode::Strict => {
            if let Some(miss) = misses.first() {
                return Err(TraceError::Unjoined {
                    file: DURATIONS,
                    key: format!("{}/{}/{}", miss.owner, miss.app, miss.function),
                });
            }
        }
        IngestMode::Lossy(LossyIngest::Skip) => {
            report.missing_duration_skipped += misses.len() as u64;
        }
        IngestMode::Lossy(LossyIngest::ImputeMedians) => {
            // Donor pools come from the *measured* functions only —
            // imputation order can then never matter.
            let mut by_app: BTreeMap<(&str, &str), Vec<&AzureFunction>> = BTreeMap::new();
            let mut by_trigger: BTreeMap<Trigger, Vec<&AzureFunction>> = BTreeMap::new();
            for function in &functions {
                by_app
                    .entry((function.owner.as_str(), function.app.as_str()))
                    .or_default()
                    .push(function);
                by_trigger
                    .entry(function.trigger)
                    .or_default()
                    .push(function);
            }
            let mut imputed: Vec<AzureFunction> = Vec::new();
            for row in misses {
                let (donors, counter) = match by_app.get(&(row.owner.as_str(), row.app.as_str())) {
                    Some(donors) => (donors, &mut report.imputed_from_app),
                    None => match by_trigger.get(&row.trigger) {
                        Some(donors) => (donors, &mut report.imputed_from_trigger),
                        None => {
                            report.unimputable_skipped += 1;
                            continue;
                        }
                    },
                };
                *counter += 1;
                let (average, count, minimum, maximum, sketch) = impute_from(donors);
                imputed.push(AzureFunction {
                    owner: row.owner,
                    app: row.app,
                    function: row.function,
                    trigger: row.trigger,
                    counts: row.counts,
                    mean_duration_ms: average,
                    sampled_executions: count,
                    min_duration_ms: minimum,
                    max_duration_ms: maximum,
                    duration_ms: sketch,
                });
            }
            functions.extend(imputed);
        }
    }

    // Leftover duration rows never joined an invocations row.
    if lossy {
        report.orphan_durations_skipped += by_key.len() as u64;
    } else if let Some(leftover) = by_key.into_keys().next() {
        return Err(TraceError::Unjoined {
            file: INVOCATIONS,
            key: format!("{}/{}/{}", leftover.0, leftover.1, leftover.2),
        });
    }

    // Memory: dedup, then require (strict) or count (lossy) the join
    // to an invoking app.
    let invoking_apps: BTreeSet<(&str, &str)> = functions
        .iter()
        .map(|f| (f.owner.as_str(), f.app.as_str()))
        .collect();
    let mut apps = Vec::with_capacity(mem.rows.len());
    let mut seen_apps: BTreeSet<(String, String)> = BTreeSet::new();
    for app in mem.rows {
        if !seen_apps.insert((app.owner.clone(), app.app.clone())) {
            if lossy {
                report.duplicate_memory_skipped += 1;
                continue;
            }
            return Err(azure::parse_error(
                MEMORY,
                0,
                format!("duplicate app row {}/{}", app.owner, app.app),
            ));
        }
        if !invoking_apps.contains(&(app.owner.as_str(), app.app.as_str())) {
            if lossy {
                report.orphan_memory_skipped += 1;
                continue;
            }
            return Err(TraceError::Unjoined {
                file: INVOCATIONS,
                key: format!("{}/{}", app.owner, app.app),
            });
        }
        apps.push(app);
    }

    report.functions = functions.len() as u64;
    report.apps = apps.len() as u64;
    debug_assert!(report.is_balanced(), "unbalanced ingest report: {report:?}");
    Ok((AzureDataset::assemble(functions, apps, minutes), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    const INV: &str = "HashOwner,HashApp,HashFunction,Trigger,1,2\n\
                       o1,a1,f1,http,4,2\n\
                       o1,a1,f2,http,1,1\n\
                       o1,a2,g1,queue,3,3\n\
                       o2,a3,h1,timer,2,0\n";
    const DUR: &str = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,\
                       percentile_Average_0,percentile_Average_50,percentile_Average_100\n\
                       o1,a1,f1,120,7,10,400,10,100,400\n\
                       o1,a2,g1,60,5,20,90,20,55,90\n";
    const MEM: &str = "HashOwner,HashApp,SampleCount,AverageAllocatedMb,\
                       AverageAllocatedMb_pct50,AverageAllocatedMb_pct100\n\
                       o1,a1,10,96,90,128\n";

    #[test]
    fn strict_mode_reports_zero_skips_and_balances() {
        let (dataset, report) = AzureDataset::from_csv_with(
            fixture::INVOCATIONS_CSV,
            fixture::DURATIONS_CSV,
            fixture::MEMORY_CSV,
            IngestMode::Strict,
        )
        .unwrap();
        assert_eq!(dataset, fixture::dataset());
        assert_eq!(report.functions, dataset.functions().len() as u64);
        assert_eq!(report.apps, dataset.apps().len() as u64);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.imputed(), 0);
        assert!(report.is_balanced());
        // One text per family counts as one shard each.
        assert_eq!(report.invocation_shards, 1);
        assert_eq!(report.duration_shards, 1);
        assert_eq!(report.memory_shards, 1);
    }

    #[test]
    fn hand_built_unbalanced_reports_are_false_not_panics() {
        // More imputations than functions can only come from stitching
        // reports together wrongly; the answer is `false`, not an
        // underflow panic.
        let report = IngestReport {
            imputed_from_app: 1,
            ..IngestReport::default()
        };
        assert!(!report.is_balanced());
    }

    #[test]
    fn lossy_skip_drops_unjoined_functions_and_counts_them() {
        // f2 and h1 have no duration rows; strict errors, lossy-skip
        // keeps the measured two.
        assert!(AzureDataset::from_csv(INV, DUR, MEM).is_err());
        let (dataset, report) =
            AzureDataset::from_csv_with(INV, DUR, MEM, IngestMode::Lossy(LossyIngest::Skip))
                .unwrap();
        assert_eq!(dataset.functions().len(), 2);
        assert_eq!(report.missing_duration_skipped, 2);
        assert_eq!(report.functions, 2);
        assert_eq!(report.imputed(), 0);
        assert!(report.is_balanced());
    }

    #[test]
    fn lossy_impute_fills_from_app_then_trigger_medians() {
        let (dataset, report) = AzureDataset::from_csv_with(
            INV,
            DUR,
            MEM,
            IngestMode::Lossy(LossyIngest::ImputeMedians),
        )
        .unwrap();
        // f2 imputes from its app (donor: f1). h1 is a timer, its app
        // has no measured row and neither does any other timer — it
        // drops as unimputable.
        assert_eq!(dataset.functions().len(), 3);
        assert_eq!(report.imputed_from_app, 1);
        assert_eq!(report.imputed_from_trigger, 0);
        assert_eq!(report.unimputable_skipped, 1);
        assert!(report.is_balanced());
        let f2 = dataset
            .functions()
            .iter()
            .find(|f| f.function == "f2")
            .unwrap();
        // Single donor → the donor's statistics verbatim.
        assert_eq!(f2.mean_duration_ms, 120.0);
        assert_eq!(f2.sampled_executions, 7);
        assert_eq!(
            f2.duration_ms.points(),
            [(0.0, 10.0), (50.0, 100.0), (100.0, 400.0)]
        );
    }

    #[test]
    fn lossy_impute_uses_trigger_pool_when_app_has_no_donor() {
        // Give h1's trigger a donor in another app: add a timer row
        // with measured durations.
        let inv = format!("{INV}o9,a9,t1,timer,1,1\n");
        let dur = format!("{DUR}o9,a9,t1,500,3,100,900,100,450,900\n");
        let (dataset, report) = AzureDataset::from_csv_with(
            &inv,
            &dur,
            MEM,
            IngestMode::Lossy(LossyIngest::ImputeMedians),
        )
        .unwrap();
        assert_eq!(report.imputed_from_trigger, 1);
        assert_eq!(report.unimputable_skipped, 0);
        assert!(report.is_balanced());
        let h1 = dataset
            .functions()
            .iter()
            .find(|f| f.function == "h1")
            .unwrap();
        assert_eq!(h1.mean_duration_ms, 500.0);
    }

    #[test]
    fn lossy_counts_zero_count_invalid_duplicate_and_orphan_rows() {
        let dur = format!(
            "{DUR}o1,a1,f2,80,0,40,100,40,70,100\n\
             o1,a2,g1,60,5,20,90,20,55,90\n\
             oX,aX,zz,10,1,10,10,10,10,10\n\
             o2,a3,h1,NaN,4,1,9,1,5,9\n"
        );
        let mem = format!("{MEM}o1,a1,11,100,95,130\noZ,aZ,5,32,30,40\n");
        let (dataset, report) =
            AzureDataset::from_csv_with(INV, &dur, &mem, IngestMode::Lossy(LossyIngest::Skip))
                .unwrap();
        // f2's only duration row has Count == 0 → zero-count skip, and
        // f2 itself then misses.
        assert_eq!(report.zero_count_durations_skipped, 1);
        assert_eq!(report.invalid_durations_skipped, 1, "NaN average row");
        assert_eq!(report.duplicate_durations_skipped, 1, "g1 repeated");
        assert_eq!(report.orphan_durations_skipped, 1, "zz joins nothing");
        assert_eq!(report.duplicate_memory_skipped, 1);
        assert_eq!(report.orphan_memory_skipped, 1);
        assert_eq!(report.missing_duration_skipped, 2, "f2 and h1");
        assert_eq!(dataset.functions().len(), 2);
        assert!(report.is_balanced());
    }

    #[test]
    fn structural_damage_is_an_error_even_in_lossy_mode() {
        let ragged = INV.replace("o1,a1,f1,http,4,2", "o1,a1,f1,http,4");
        assert!(AzureDataset::from_csv_with(
            &ragged,
            DUR,
            MEM,
            IngestMode::Lossy(LossyIngest::Skip)
        )
        .is_err());
        let bad_header = DUR.replace("Average,Count", "Avg,Count");
        assert!(AzureDataset::from_csv_with(
            INV,
            &bad_header,
            MEM,
            IngestMode::Lossy(LossyIngest::Skip)
        )
        .is_err());
    }

    #[test]
    fn lossy_ingest_of_clean_input_matches_strict() {
        for policy in [LossyIngest::Skip, LossyIngest::ImputeMedians] {
            let (dataset, report) = AzureDataset::from_csv_with(
                fixture::INVOCATIONS_CSV,
                fixture::DURATIONS_CSV,
                fixture::MEMORY_CSV,
                IngestMode::Lossy(policy),
            )
            .unwrap();
            assert_eq!(dataset, fixture::dataset());
            assert_eq!(report.dropped(), 0);
            assert!(report.is_balanced());
        }
    }
}
