//! Shared scaffolding for this crate's shard tests, the workspace's
//! ingest property tests and the `sharded_ingest` example: scratch
//! directories and fixture-splitting helpers. Hidden from docs — not
//! part of the crate's API contract.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

/// A scratch directory under the system temp dir, pre-cleaned on
/// creation (a crashed earlier run cannot poison this one) and removed
/// on drop. Names are unique per process *and* per instance, so
/// concurrent tests never collide.
pub struct TempDir(PathBuf);

impl TempDir {
    /// Creates `<temp>/litmus-<tag>-<pid>-<n>`.
    ///
    /// # Panics
    ///
    /// When the directory cannot be created.
    pub fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "litmus-{tag}-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir"); // lint:allow(panic-in-lib): test-support helper; fs failure here means the test failed
        TempDir(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.0
    }

    /// Writes `text` as `name` inside the directory.
    ///
    /// # Panics
    ///
    /// On write failure.
    pub fn write(&self, name: &str, text: &str) {
        std::fs::write(self.0.join(name), text).expect("write temp file"); // lint:allow(panic-in-lib): test-support helper; fs failure here means the test failed
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deals `csv`'s data rows into `shards` files per `assignment` (row
/// `i` goes to shard `assignment[i] % shards`; rows past the
/// assignment's end go to shard 0) and writes them as
/// `<stem>.dNN.csv`, every shard carrying the header — even when left
/// with no rows, like a quiet day in the real dataset.
///
/// # Panics
///
/// When `csv` has no header line or a shard fails to write.
pub fn write_assigned(dir: &TempDir, stem: &str, csv: &str, shards: usize, assignment: &[usize]) {
    let mut lines = csv.lines();
    let header = lines.next().expect("csv has a header"); // lint:allow(panic-in-lib): test-support helper asserting on fixture shape
    let mut parts = vec![format!("{header}\n"); shards];
    for (idx, line) in lines.enumerate() {
        let shard = assignment.get(idx).copied().unwrap_or(0) % shards;
        parts[shard].push_str(line);
        parts[shard].push('\n');
    }
    for (idx, part) in parts.iter().enumerate() {
        dir.write(&format!("{stem}.d{:02}.csv", idx + 1), part);
    }
}

/// [`write_assigned`] with a round-robin assignment — an interleaved
/// worst-case partition (no shard holds a contiguous row range) that
/// canonical dataset ordering must absorb.
pub fn write_sharded(dir: &TempDir, stem: &str, csv: &str, shards: usize) {
    let rows = csv.lines().count().saturating_sub(1);
    let assignment: Vec<usize> = (0..rows).collect();
    write_assigned(dir, stem, csv, shards, &assignment);
}
