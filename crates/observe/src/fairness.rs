//! Per-tenant fairness rollups over a replay's completion samples.
//!
//! Litmus prices by *predicted slowdown*, so fairness across tenants
//! is legible directly from the span chains: if one tenant's
//! invocations systematically see higher slowdowns, longer queue
//! waits, or absorb most of the steal churn, the rollups here surface
//! it as a Gini coefficient plus per-tenant victim counts — without
//! re-running the replay.

use std::collections::BTreeMap;

use crate::spans::CompletionSample;

/// Aggregates of one tenant's completed invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRollup {
    /// Tenant id.
    pub tenant: u32,
    /// Completed (sampled) invocations.
    pub completions: u64,
    /// Mean predicted slowdown across completions.
    pub mean_slowdown: f64,
    /// Mean queue wait, ms.
    pub mean_wait_ms: f64,
    /// Invocations moved at least once by work stealing ("steal
    /// victims": their launch was deferred through one or more
    /// re-dispatches).
    pub stolen: u64,
    /// Total Litmus-priced spend.
    pub spend: f64,
}

/// Gini coefficient of non-negative values: 0 when all equal, → 1 as
/// one value dominates. Degenerate inputs (fewer than two values, or
/// an all-zero sum) are perfectly equal by convention.
pub fn gini(values: &[f64]) -> f64 {
    let total: f64 = values.iter().filter(|v| v.is_finite()).sum();
    if values.len() < 2 || total <= 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n - 1.0) * x)
        .sum();
    weighted / (n * total)
}

/// Folds completion samples into per-tenant rollups, ascending by
/// tenant id.
pub fn rollups(samples: &[CompletionSample]) -> Vec<TenantRollup> {
    #[derive(Default)]
    struct Acc {
        completions: u64,
        slowdown_sum: f64,
        wait_sum: f64,
        stolen: u64,
        spend: f64,
    }
    let mut by_tenant: BTreeMap<u32, Acc> = BTreeMap::new();
    for sample in samples {
        let acc = by_tenant.entry(sample.tenant).or_default();
        acc.completions += 1;
        acc.slowdown_sum += sample.predicted;
        acc.wait_sum += sample.wait_ms as f64;
        acc.stolen += u64::from(sample.moves > 0);
        acc.spend += sample.cost;
    }
    by_tenant
        .into_iter()
        .map(|(tenant, acc)| {
            let n = acc.completions.max(1) as f64;
            TenantRollup {
                tenant,
                completions: acc.completions,
                mean_slowdown: acc.slowdown_sum / n,
                mean_wait_ms: acc.wait_sum / n,
                stolen: acc.stolen,
                spend: acc.spend,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        tenant: u32,
        predicted: f64,
        wait_ms: u64,
        moves: u64,
        cost: f64,
    ) -> CompletionSample {
        CompletionSample {
            trace: 0,
            tenant,
            machine: 0,
            arrived_ms: 0,
            launched_ms: wait_ms,
            completed_ms: wait_ms + 10,
            wait_ms,
            moves,
            cost,
            predicted,
        }
    }

    #[test]
    fn gini_is_zero_for_uniform_and_high_for_skew() {
        assert_eq!(gini(&[3.0, 3.0, 3.0, 3.0]), 0.0);
        assert!(gini(&[100.0, 1.0, 1.0, 1.0]) > 0.6);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5.0]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn rollups_fold_per_tenant_ascending() {
        let samples = vec![
            sample(1, 2.0, 40, 1, 0.3),
            sample(0, 1.0, 0, 0, 0.1),
            sample(1, 4.0, 80, 0, 0.5),
        ];
        let rolled = rollups(&samples);
        assert_eq!(rolled.len(), 2);
        assert_eq!(rolled[0].tenant, 0);
        assert_eq!(rolled[0].completions, 1);
        assert_eq!(rolled[0].stolen, 0);
        assert_eq!(rolled[1].tenant, 1);
        assert_eq!(rolled[1].mean_slowdown, 3.0);
        assert_eq!(rolled[1].mean_wait_ms, 60.0);
        assert_eq!(rolled[1].stolen, 1);
        assert!((rolled[1].spend - 0.8).abs() < 1e-12);
    }
}
