//! A minimal parser for the flat JSONL lines `litmus-telemetry`
//! exports.
//!
//! The export format is deliberately narrow — every line is one flat
//! JSON object whose values are strings, numbers, booleans, `null`,
//! or (for histogram buckets only) a nested array — so a dependency-
//! free parser covers it completely. Arrays are preserved as raw text:
//! the query tooling treats them as opaque.

use std::fmt;

/// A parsed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// A nested array, kept as its raw source text.
    Raw(String),
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => write!(f, "{s}"),
            JsonValue::Raw(s) => write!(f, "{s}"),
        }
    }
}

/// One parsed export line: the object's fields in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatRecord {
    /// `(key, value)` pairs in the order they appear on the line.
    pub fields: Vec<(String, JsonValue)>,
}

impl FlatRecord {
    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `key` as a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// `key` as a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The record's `type` tag (`"meta"`, `"span"`, `"event"`,
    /// `"counter"`, …), empty if missing.
    pub fn record_type(&self) -> &str {
        self.str_field("type").unwrap_or("")
    }

    /// The record's `name`, empty if missing.
    pub fn name(&self) -> &str {
        self.str_field("name").unwrap_or("")
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the line.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(ch) = text.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn raw_array(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated array")),
                Some(b'[') => depth += 1,
                Some(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        let raw = &self.bytes[start..self.pos];
                        return Ok(String::from_utf8_lossy(raw).into_owned());
                    }
                }
                Some(b'"') => {
                    self.string()?;
                    continue;
                }
                Some(_) => {}
            }
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => Ok(JsonValue::Raw(self.raw_array()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| self.err(format!("bad number '{text}'")))
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }
}

/// Parses one export line (a flat JSON object).
pub fn parse_line(line: &str) -> Result<FlatRecord, ParseError> {
    let mut cursor = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cursor.skip_ws();
    cursor.expect_byte(b'{')?;
    let mut record = FlatRecord::default();
    cursor.skip_ws();
    if cursor.peek() == Some(b'}') {
        return Ok(record);
    }
    loop {
        cursor.skip_ws();
        let key = cursor.string()?;
        cursor.skip_ws();
        cursor.expect_byte(b':')?;
        let value = cursor.value()?;
        record.fields.push((key, value));
        cursor.skip_ws();
        match cursor.peek() {
            Some(b',') => cursor.pos += 1,
            Some(b'}') => return Ok(record),
            _ => return Err(cursor.err("expected ',' or '}'")),
        }
    }
}

/// Parses a whole export, one record per non-empty line. The error,
/// if any, carries the 1-based line number.
pub fn parse_export(text: &str) -> Result<Vec<FlatRecord>, (usize, ParseError)> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_line(line).map_err(|e| (i + 1, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_export_line_shape() {
        let meta =
            parse_line(r#"{"type":"meta","policy":"litmus-aware","timeline_events":4}"#).unwrap();
        assert_eq!(meta.record_type(), "meta");
        assert_eq!(meta.num("timeline_events"), Some(4.0));

        let span =
            parse_line(r#"{"type":"span","at_ms":0,"end_ms":null,"name":"machine","cost":-1.5e2}"#)
                .unwrap();
        assert_eq!(span.get("end_ms"), Some(&JsonValue::Null));
        assert_eq!(span.num("cost"), Some(-150.0));

        let hist =
            parse_line(r#"{"type":"histogram","name":"wait","count":3,"buckets":[[0,1],[5,2]]}"#)
                .unwrap();
        assert_eq!(
            hist.get("buckets"),
            Some(&JsonValue::Raw("[[0,1],[5,2]]".to_owned()))
        );
    }

    #[test]
    fn unescapes_strings() {
        let record = parse_line(r#"{"name":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(record.str_field("name"), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn reports_errors_with_position() {
        let err = parse_line(r#"{"name":}"#).unwrap_err();
        assert_eq!(err.at, 8);
        assert!(parse_line("not json").is_err());
        let (line, _) = parse_export("{\"a\":1}\nbroken\n").unwrap_err();
        assert_eq!(line, 2);
    }

    #[test]
    fn round_trips_a_real_export() {
        use litmus_telemetry::{Telemetry, TelemetryConfig};
        let mut telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.set_meta("policy", "round-robin");
        telemetry.inc("arrivals", 2);
        telemetry.observe("wait_ms", 12.5);
        telemetry.event(
            10,
            "steal",
            vec![("from", 0u32.into()), ("ok", true.into())],
        );
        let span = telemetry.open_span(0, "replay", vec![]);
        telemetry.close_span(span, 100);
        let records = parse_export(&telemetry.to_jsonl()).unwrap();
        assert_eq!(records.len(), telemetry.timeline().len() + 3); // meta + counter + histogram
        assert_eq!(records[0].record_type(), "meta");
        assert!(records.iter().any(|r| r.record_type() == "histogram"));
        let steal = records.iter().find(|r| r.name() == "steal").unwrap();
        assert_eq!(steal.get("ok"), Some(&JsonValue::Bool(true)));
    }
}
