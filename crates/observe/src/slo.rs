//! Declarative SLOs evaluated as streaming burn-rate alerts over a
//! replay timeline.
//!
//! An [`SloSpec`] names a per-tenant objective — "99% of tenant 1's
//! invocations see predicted slowdown ≤ 1.8", "99% launch within
//! 50 ms", "tenant 0 spends at most 2.0 per second" — and one or more
//! [`BurnRateRule`]s in the Google-SRE multi-window form: alert when
//! the error budget is burning at ≥ `factor`× the sustainable rate
//! over BOTH a fast and a slow trailing window (the fast window makes
//! alerts prompt, the slow window keeps them from flapping on a single
//! bad slice).
//!
//! The evaluator itself is **incremental**: [`OnlineSloEngine`] is fed
//! completion samples as they happen and emits fired/cleared
//! transitions at each slice boundary
//! ([`OnlineSloEngine::observe_boundary`]) — the shape a cluster
//! driver co-locates with the replay loop to get a live alert signal.
//! [`SloEngine::evaluate`] is the post-hoc wrapper: it replays a
//! finished timeline's `trace.*` span chains through the same online
//! engine and emits every alert as an open/close `slo.alert` span in
//! its own [`Telemetry`] — so alert fire and clear times are
//! deterministic sim-time facts of the replay, byte-reproducible in
//! JSONL like everything else in the stack, and provably identical to
//! what the online engine reported during the run.

use litmus_telemetry::{Telemetry, TelemetryConfig, Timeline};

use crate::fairness::{gini, rollups, TenantRollup};
use crate::spans::{completions, horizon_ms, CompletionSample};

/// What an [`SloSpec`] measures, and the per-event threshold that
/// makes one observation "bad" (budget-consuming).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// A completion is bad when its billed predicted slowdown exceeds
    /// `max`. With objective `0.99` this is a p99 slowdown target.
    Slowdown {
        /// Largest acceptable predicted slowdown.
        max: f64,
    },
    /// A completion is bad when it queued longer than `max_ms` before
    /// launching.
    QueueWait {
        /// Largest acceptable queue wait, ms.
        max_ms: u64,
    },
    /// A slice is bad when the tenant's Litmus-priced spend during it
    /// exceeds `max_per_s` (pro-rated to the slice length). Rate
    /// objectives count every slice, so an idle stretch is in-budget
    /// by definition.
    BillingRate {
        /// Largest acceptable spend per second.
        max_per_s: f64,
    },
}

impl SloKind {
    fn label(&self) -> &'static str {
        match self {
            SloKind::Slowdown { .. } => "slowdown",
            SloKind::QueueWait { .. } => "queue-wait",
            SloKind::BillingRate { .. } => "billing-rate",
        }
    }
}

/// One multi-window burn-rate alert rule: fire when the error budget
/// burns at ≥ `factor`× the sustainable rate over both windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRateRule {
    /// Severity tag stamped on the alert (`"page"`, `"ticket"`, …).
    pub severity: &'static str,
    /// Fast trailing window, ms (promptness).
    pub fast_ms: u64,
    /// Slow trailing window, ms (flap suppression).
    pub slow_ms: u64,
    /// Minimum burn-rate multiple that fires the alert.
    pub factor: f64,
}

impl BurnRateRule {
    /// A rule with explicit windows and factor.
    pub fn new(severity: &'static str, fast_ms: u64, slow_ms: u64, factor: f64) -> Self {
        BurnRateRule {
            severity,
            fast_ms,
            slow_ms,
            factor,
        }
    }
}

/// A declarative service-level objective over one tenant (or the whole
/// cluster) plus its alerting rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Display name, stamped on alerts.
    pub name: String,
    /// Tenant the objective applies to; `None` aggregates all tenants.
    pub tenant: Option<u32>,
    /// The measured signal and its per-event threshold.
    pub kind: SloKind,
    /// Target good fraction in `[0, 1)` — e.g. `0.99` allows a 1%
    /// error budget.
    pub objective: f64,
    /// Burn-rate rules; each fires and clears independently.
    pub rules: Vec<BurnRateRule>,
}

impl SloSpec {
    fn new(name: impl Into<String>, kind: SloKind) -> Self {
        SloSpec {
            name: name.into(),
            tenant: None,
            kind,
            objective: 0.99,
            // Sim replays span seconds, not weeks: the default windows
            // are the SRE 5m/1h page and 30m/6h ticket pairs scaled to
            // a seconds-long horizon.
            rules: vec![
                BurnRateRule::new("page", 500, 2_000, 4.0),
                BurnRateRule::new("ticket", 2_000, 8_000, 1.0),
            ],
        }
    }

    /// A predicted-slowdown objective (bad above `max`).
    pub fn slowdown(name: impl Into<String>, max: f64) -> Self {
        SloSpec::new(name, SloKind::Slowdown { max })
    }

    /// A queue-wait objective (bad above `max_ms`).
    pub fn queue_wait(name: impl Into<String>, max_ms: u64) -> Self {
        SloSpec::new(name, SloKind::QueueWait { max_ms })
    }

    /// A spend-rate objective (bad slices above `max_per_s`).
    pub fn billing_rate(name: impl Into<String>, max_per_s: f64) -> Self {
        SloSpec::new(name, SloKind::BillingRate { max_per_s })
    }

    /// Restricts the objective to one tenant.
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Sets the target good fraction (clamped to `[0, 1)`).
    pub fn objective(mut self, objective: f64) -> Self {
        self.objective = if objective.is_finite() {
            objective.clamp(0.0, 1.0 - 1e-9)
        } else {
            0.0
        };
        self
    }

    /// Replaces the alert rules.
    pub fn rules(mut self, rules: Vec<BurnRateRule>) -> Self {
        self.rules = rules;
        self
    }

    /// The sustainable-rate denominator: `1 − objective`.
    fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// One fired alert (cleared or still open at the horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The violated SLO's name.
    pub slo: String,
    /// Severity of the rule that fired.
    pub severity: &'static str,
    /// Tenant scope of the SLO.
    pub tenant: Option<u32>,
    /// Slice boundary the alert fired at, sim ms.
    pub fired_ms: u64,
    /// Slice boundary it cleared at (`None` = open at horizon).
    pub cleared_ms: Option<u64>,
    /// Largest fast-window burn multiple seen while firing.
    pub peak_burn: f64,
}

/// Fast-window burn-rate samples of one SLO (its first rule), one
/// point per slice boundary — the raw material for burn timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSeries {
    /// The SLO's name.
    pub slo: String,
    /// Tenant scope.
    pub tenant: Option<u32>,
    /// `(boundary_ms, burn multiple)` per evaluated boundary.
    pub points: Vec<(u64, f64)>,
}

/// Everything one evaluation produced: the engine's own deterministic
/// telemetry (alert spans + fairness registry), the typed alert list,
/// per-tenant rollups and burn-rate series.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Alert spans, fairness gauges and rollup events, exportable with
    /// the same byte-reproducibility contract as the replay telemetry.
    pub telemetry: Telemetry,
    /// Fired alerts in `(fired_ms, spec, rule)` order.
    pub alerts: Vec<Alert>,
    /// Per-tenant fairness rollups, ascending by tenant.
    pub rollups: Vec<TenantRollup>,
    /// Gini of per-tenant mean predicted slowdown.
    pub gini_slowdown: f64,
    /// Gini of per-tenant spend.
    pub gini_spend: f64,
    /// Per-SLO fast-window burn series.
    pub series: Vec<SloSeries>,
    /// Evaluation horizon, sim ms.
    pub horizon_ms: u64,
}

impl SloReport {
    /// The engine's telemetry as byte-reproducible JSONL.
    pub fn to_jsonl(&self) -> String {
        self.telemetry.to_jsonl()
    }

    /// Human summary: alerts first, then rollups, then the telemetry
    /// digest.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.alerts.is_empty() {
            let _ = writeln!(out, "alerts: none (horizon {} ms)", self.horizon_ms);
        } else {
            let _ = writeln!(out, "alerts:");
            for alert in &self.alerts {
                let tenant = match alert.tenant {
                    Some(t) => format!("tenant {t}"),
                    None => "all tenants".to_owned(),
                };
                let cleared = match alert.cleared_ms {
                    Some(ms) => format!("cleared @ {ms} ms"),
                    None => "still firing at horizon".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "  [{}] {} ({tenant}) fired @ {} ms, {cleared}, peak burn {:.1}x",
                    alert.severity, alert.slo, alert.fired_ms, alert.peak_burn
                );
            }
        }
        if !self.rollups.is_empty() {
            let _ = writeln!(
                out,
                "tenants (slowdown Gini {:.3}, spend Gini {:.3}):",
                self.gini_slowdown, self.gini_spend
            );
            for roll in &self.rollups {
                let _ = writeln!(
                    out,
                    "  tenant {}: {} done, mean slowdown {:.2}, mean wait {:.1} ms, {} stolen, spend {:.3}",
                    roll.tenant,
                    roll.completions,
                    roll.mean_slowdown,
                    roll.mean_wait_ms,
                    roll.stolen,
                    roll.spend
                );
            }
        }
        out.push_str(&self.telemetry.summary());
        out
    }
}

/// Evaluates a set of [`SloSpec`]s against a replay timeline.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
}

impl SloEngine {
    /// An engine with no SLOs (add them with [`SloEngine::spec`]).
    pub fn new() -> Self {
        SloEngine::default()
    }

    /// Adds an SLO.
    pub fn spec(mut self, spec: SloSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The configured SLOs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Streams the engine over a finished replay timeline by feeding
    /// its `trace.*` completions through an [`OnlineSloEngine`] and
    /// advancing one `slice_ms` boundary at a time. Deterministic: the
    /// input timeline is a pure function of the replay, and so is
    /// every alert boundary computed here — and because the post-hoc
    /// path *is* the online engine, live alert streams and finished
    /// reports cannot drift apart.
    pub fn evaluate(&self, timeline: &Timeline, slice_ms: u64) -> SloReport {
        let slice_ms = slice_ms.max(1);
        let samples = completions(timeline);
        let horizon = horizon_ms(timeline);

        let mut online = OnlineSloEngine::new(self.specs.clone(), slice_ms);
        for sample in &samples {
            online.record(sample);
        }
        online.finish(horizon);

        let mut telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.set_meta("source", "slo-engine");
        telemetry.set_meta("slice_ms", slice_ms.to_string());
        telemetry.set_meta("slos", self.specs.len().to_string());

        // Episodes are recorded at fire time in (boundary, spec, rule)
        // order — chronological, tie-broken by declaration order, the
        // same stable mode-independent order the sorted post-hoc list
        // always had.
        let mut alerts = Vec::with_capacity(online.episodes.len());
        for episode in &online.episodes {
            let alert = &episode.alert;
            let spec = &self.specs[episode.spec_idx];
            let tenant_label = match alert.tenant {
                Some(t) => t.to_string(),
                None => "all".to_owned(),
            };
            let fields = vec![
                ("slo", alert.slo.clone().into()),
                ("tenant", tenant_label.into()),
                ("severity", alert.severity.into()),
                ("kind", spec.kind.label().into()),
                ("objective", spec.objective.into()),
                (
                    "factor",
                    spec.rules
                        .iter()
                        .find(|r| r.severity == alert.severity)
                        .map(|r| r.factor)
                        .unwrap_or(0.0)
                        .into(),
                ),
                ("burn_fast", episode.fired_burn_fast.into()),
                ("burn_slow", episode.fired_burn_slow.into()),
                ("peak_burn", alert.peak_burn.into()),
            ];
            match alert.cleared_ms {
                Some(end) => telemetry.span("slo.alert", alert.fired_ms, end, fields),
                None => {
                    telemetry.open_span(alert.fired_ms, "slo.alert", fields);
                }
            }
            telemetry.inc("slo.alert.fired", 1);
            if alert.cleared_ms.is_some() {
                telemetry.inc("slo.alert.cleared", 1);
            }
            alerts.push(alert.clone());
        }
        let series = online.series();

        let rollups = rollups(&samples);
        let gini_slowdown = gini(&rollups.iter().map(|r| r.mean_slowdown).collect::<Vec<_>>());
        let gini_spend = gini(&rollups.iter().map(|r| r.spend).collect::<Vec<_>>());
        telemetry.gauge_set("fairness.gini_slowdown", gini_slowdown);
        telemetry.gauge_set("fairness.gini_spend", gini_spend);
        for roll in &rollups {
            telemetry.event(
                horizon,
                "tenant.rollup",
                vec![
                    ("tenant", roll.tenant.into()),
                    ("completions", roll.completions.into()),
                    ("mean_slowdown", roll.mean_slowdown.into()),
                    ("mean_wait_ms", roll.mean_wait_ms.into()),
                    ("stolen", roll.stolen.into()),
                    ("spend", roll.spend.into()),
                ],
            );
        }

        SloReport {
            telemetry,
            alerts,
            rollups,
            gini_slowdown,
            gini_spend,
            series,
            horizon_ms: horizon,
        }
    }
}

/// Whether a live alert transition opened or closed an episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloTransition {
    /// The alert started firing at this boundary.
    Fired,
    /// The alert stopped firing at this boundary.
    Cleared,
}

/// One live alert transition, emitted by
/// [`OnlineSloEngine::observe_boundary`] at the slice boundary it
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Slice boundary of the transition, sim ms.
    pub at_ms: u64,
    /// Index of the spec in the engine's spec list.
    pub spec_idx: usize,
    /// Index of the rule within the spec.
    pub rule_idx: usize,
    /// The violated SLO's name.
    pub slo: String,
    /// Severity of the rule.
    pub severity: &'static str,
    /// Tenant scope of the SLO.
    pub tenant: Option<u32>,
    /// Fired or cleared.
    pub transition: SloTransition,
    /// Fast-window burn multiple at this boundary.
    pub burn_fast: f64,
    /// Slow-window burn multiple at this boundary.
    pub burn_slow: f64,
    /// Largest fast-window burn seen in the episode so far.
    pub peak_burn: f64,
}

/// One fire→clear episode, recorded at fire time. The engine's episode
/// list is therefore always in `(fired_ms, spec, rule)` order — the
/// exact order [`SloEngine::evaluate`] reports alerts in.
#[derive(Debug, Clone)]
struct Episode {
    alert: Alert,
    spec_idx: usize,
    fired_burn_fast: f64,
    fired_burn_slow: f64,
}

/// Incremental per-spec tallies: raw per-slice counts for slices still
/// accepting samples, prefix sums over finalized slices.
#[derive(Debug, Clone, Default)]
struct SpecState {
    /// Per-slice bad counts at unclamped slice index (grows on demand).
    bad: Vec<u64>,
    /// Per-slice observation counts (unused by `BillingRate`).
    total: Vec<u64>,
    /// Per-slice spend (`BillingRate` only).
    spend: Vec<f64>,
    /// `bad_prefix[i+1]` = bad over finalized slices `0..=i`.
    bad_prefix: Vec<u64>,
    /// Same, for totals.
    total_prefix: Vec<u64>,
    /// Fast-window burn of the first rule, one point per boundary.
    points: Vec<(u64, f64)>,
    /// Per rule: index into `episodes` of the open episode, if firing.
    open: Vec<Option<usize>>,
}

/// The incremental burn-rate evaluator: feed it completion samples as
/// they happen ([`OnlineSloEngine::record`]) and advance it at slice
/// boundaries ([`OnlineSloEngine::observe_boundary`]); it returns the
/// fired/cleared transitions of each boundary as they become
/// decidable. [`OnlineSloEngine::finish`] settles the final boundary
/// (where post-hoc evaluation folds at-horizon completions into the
/// last slice) so a finished engine agrees with
/// [`SloEngine::evaluate`] event-for-event.
///
/// ## Feeding protocol
///
/// * `record` every completion with `completed_ms ≤ now` before
///   calling `observe_boundary(now)`; samples never arrive with
///   `completed_ms` at or below an already-observed boundary (sim time
///   is monotone).
/// * `observe_boundary(now)` finalizes every boundary **strictly
///   below** `now`. A boundary exactly at `now` stays pending: if the
///   replay ends there, `finish` must first fold completions stamped
///   exactly at the horizon into the final slice (the post-hoc
///   convention), and only `finish` knows the horizon.
/// * `finish(horizon)` folds trailing samples and finalizes through
///   the horizon's boundary. Call exactly once, after the last
///   `observe_boundary`.
#[derive(Debug, Clone)]
pub struct OnlineSloEngine {
    specs: Vec<SloSpec>,
    slice_ms: u64,
    /// Number of finalized slices (boundary `finalized * slice_ms` is
    /// decided).
    finalized: usize,
    finished: bool,
    states: Vec<SpecState>,
    episodes: Vec<Episode>,
}

impl OnlineSloEngine {
    /// An engine over `specs`, advancing at `slice_ms` boundaries.
    pub fn new(specs: Vec<SloSpec>, slice_ms: u64) -> Self {
        let states = specs
            .iter()
            .map(|spec| SpecState {
                bad_prefix: vec![0],
                total_prefix: vec![0],
                open: vec![None; spec.rules.len()],
                ..SpecState::default()
            })
            .collect();
        OnlineSloEngine {
            specs,
            slice_ms: slice_ms.max(1),
            finalized: 0,
            finished: false,
            states,
            episodes: Vec::new(),
        }
    }

    /// The configured SLOs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// The slice length boundaries advance by, ms.
    pub fn slice_ms(&self) -> u64 {
        self.slice_ms
    }

    /// Buckets one completion sample. Samples for an already-finalized
    /// slice (a protocol violation) are folded into the oldest still
    /// open slice rather than dropped.
    pub fn record(&mut self, sample: &CompletionSample) {
        let index = ((sample.completed_ms / self.slice_ms) as usize).max(self.finalized);
        for (spec, state) in self.specs.iter().zip(&mut self.states) {
            if spec.tenant.is_some_and(|t| sample.tenant != t) {
                continue;
            }
            match spec.kind {
                SloKind::Slowdown { max } => {
                    grow(&mut state.total, index)[index] += 1;
                    grow(&mut state.bad, index)[index] += u64::from(sample.predicted > max);
                }
                SloKind::QueueWait { max_ms } => {
                    grow(&mut state.total, index)[index] += 1;
                    grow(&mut state.bad, index)[index] += u64::from(sample.wait_ms > max_ms);
                }
                SloKind::BillingRate { .. } => {
                    grow(&mut state.spend, index)[index] += sample.cost;
                }
            }
        }
    }

    /// Finalizes every slice boundary strictly below `now_ms` and
    /// returns the fired/cleared transitions those boundaries
    /// produced, in `(boundary, spec, rule)` order.
    pub fn observe_boundary(&mut self, now_ms: u64) -> Vec<SloAlert> {
        let mut transitions = Vec::new();
        while ((self.finalized as u64 + 1).saturating_mul(self.slice_ms)) < now_ms {
            self.finalize_next_slice(&mut transitions);
        }
        transitions
    }

    /// Settles the replay at `horizon_ms`: completions stamped exactly
    /// at (or, defensively, beyond) the horizon fold into the final
    /// slice — matching the post-hoc clamp of [`SloEngine::evaluate`]
    /// — and every remaining boundary through the horizon finalizes.
    /// Returns those boundaries' transitions.
    pub fn finish(&mut self, horizon_ms: u64) -> Vec<SloAlert> {
        let mut transitions = Vec::new();
        if self.finished {
            return transitions;
        }
        self.finished = true;
        let slices = ((horizon_ms.div_ceil(self.slice_ms)).max(1) as usize).max(self.finalized);
        let last = slices - 1;
        if last >= self.finalized {
            for state in &mut self.states {
                fold_tail(&mut state.bad, last);
                fold_tail(&mut state.total, last);
                fold_tail(&mut state.spend, last);
            }
        }
        while self.finalized < slices {
            self.finalize_next_slice(&mut transitions);
        }
        transitions
    }

    /// Alerts currently firing: one [`Alert`] (with `cleared_ms:
    /// None`) per open episode, in fire order.
    pub fn active_alerts(&self) -> Vec<Alert> {
        self.episodes
            .iter()
            .filter(|e| e.alert.cleared_ms.is_none())
            .map(|e| e.alert.clone())
            .collect()
    }

    /// Every episode so far as an [`Alert`] (open episodes have
    /// `cleared_ms: None` and their peak burn to date), in
    /// `(fired_ms, spec, rule)` order — the order
    /// [`SloEngine::evaluate`] reports.
    pub fn alerts(&self) -> Vec<Alert> {
        self.episodes.iter().map(|e| e.alert.clone()).collect()
    }

    /// Per-SLO fast-window burn series over the finalized boundaries.
    pub fn series(&self) -> Vec<SloSeries> {
        self.specs
            .iter()
            .zip(&self.states)
            .map(|(spec, state)| SloSeries {
                slo: spec.name.clone(),
                tenant: spec.tenant,
                points: state.points.clone(),
            })
            .collect()
    }

    /// Sim time through which boundaries are finalized.
    pub fn finalized_through_ms(&self) -> u64 {
        self.finalized as u64 * self.slice_ms
    }

    fn finalize_next_slice(&mut self, transitions: &mut Vec<SloAlert>) {
        let i = self.finalized;
        let boundary = (i as u64 + 1) * self.slice_ms;
        for (spec_idx, (spec, state)) in self.specs.iter().zip(&mut self.states).enumerate() {
            // Seal slice i into the prefix sums.
            let (bad_i, total_i) = match spec.kind {
                SloKind::BillingRate { max_per_s } => {
                    let cap = max_per_s * self.slice_ms as f64 / 1_000.0;
                    let spend = state.spend.get(i).copied().unwrap_or(0.0);
                    (u64::from(spend > cap), 1)
                }
                _ => (
                    state.bad.get(i).copied().unwrap_or(0),
                    state.total.get(i).copied().unwrap_or(0),
                ),
            };
            state.bad_prefix.push(state.bad_prefix[i] + bad_i);
            state.total_prefix.push(state.total_prefix[i] + total_i);

            let budget = spec.budget();
            for (rule_idx, rule) in spec.rules.iter().enumerate() {
                let fast = (rule.fast_ms / self.slice_ms).max(1) as usize;
                let slow = (rule.slow_ms / self.slice_ms).max(1) as usize;
                let burn_fast = state.burn(i, fast, budget);
                let burn_slow = state.burn(i, slow, budget);
                if rule_idx == 0 {
                    state.points.push((boundary, burn_fast));
                }
                let firing = burn_fast >= rule.factor && burn_slow >= rule.factor;
                let open = &mut state.open[rule_idx];
                match (*open, firing) {
                    (None, true) => {
                        *open = Some(self.episodes.len());
                        self.episodes.push(Episode {
                            alert: Alert {
                                slo: spec.name.clone(),
                                severity: rule.severity,
                                tenant: spec.tenant,
                                fired_ms: boundary,
                                cleared_ms: None,
                                peak_burn: burn_fast,
                            },
                            spec_idx,
                            fired_burn_fast: burn_fast,
                            fired_burn_slow: burn_slow,
                        });
                        transitions.push(SloAlert {
                            at_ms: boundary,
                            spec_idx,
                            rule_idx,
                            slo: spec.name.clone(),
                            severity: rule.severity,
                            tenant: spec.tenant,
                            transition: SloTransition::Fired,
                            burn_fast,
                            burn_slow,
                            peak_burn: burn_fast,
                        });
                    }
                    (Some(episode), true) => {
                        let peak = &mut self.episodes[episode].alert.peak_burn;
                        *peak = peak.max(burn_fast);
                    }
                    (Some(episode), false) => {
                        let alert = &mut self.episodes[episode].alert;
                        alert.cleared_ms = Some(boundary);
                        transitions.push(SloAlert {
                            at_ms: boundary,
                            spec_idx,
                            rule_idx,
                            slo: spec.name.clone(),
                            severity: rule.severity,
                            tenant: spec.tenant,
                            transition: SloTransition::Cleared,
                            burn_fast,
                            burn_slow,
                            peak_burn: alert.peak_burn,
                        });
                        *open = None;
                    }
                    (None, false) => {}
                }
            }
        }
        self.finalized = i + 1;
    }
}

impl SpecState {
    /// Burn multiple over the `window` slices ending at slice `i`
    /// (inclusive): `(bad/total) / budget`, zero when the window saw
    /// no observations. Only valid once slice `i` is in the prefixes.
    fn burn(&self, i: usize, window: usize, budget: f64) -> f64 {
        let end = i + 1;
        let start = end.saturating_sub(window);
        let total = self.total_prefix[end] - self.total_prefix[start];
        if total == 0 {
            return 0.0;
        }
        let bad = self.bad_prefix[end] - self.bad_prefix[start];
        (bad as f64 / total as f64) / budget
    }
}

/// Grows `v` so `index` is addressable, returning it for chaining.
fn grow<T: Clone + Default>(v: &mut Vec<T>, index: usize) -> &mut Vec<T> {
    if v.len() <= index {
        v.resize(index + 1, T::default());
    }
    v
}

/// Adds everything past slice `last` into slice `last` and truncates —
/// the online equivalent of the post-hoc `min(slices - 1)` clamp on
/// at-horizon completions.
fn fold_tail<T: Copy + Default + std::ops::AddAssign>(v: &mut Vec<T>, last: usize) {
    if v.len() <= last + 1 {
        return;
    }
    let mut sum = T::default();
    for &x in &v[last + 1..] {
        sum += x;
    }
    v.truncate(last + 1);
    if let Some(slot) = v.get_mut(last) {
        *slot += sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One completion per slice: slices in `bad` get a 100 ms queue
    /// wait, the rest launch after 10 ms.
    fn wait_timeline(slices: u64, slice_ms: u64, bad: &[u64]) -> Timeline {
        let mut timeline = Timeline::new();
        for i in 0..slices {
            let done = i * slice_ms + slice_ms / 2;
            let wait = if bad.contains(&i) { 100 } else { 10 };
            let launch = done.saturating_sub(5);
            timeline.span(
                "trace.queue",
                launch.saturating_sub(wait),
                launch,
                vec![
                    ("trace", i.into()),
                    ("tenant", 1u32.into()),
                    ("machine", 0u64.into()),
                    ("moves", 0u64.into()),
                ],
            );
            timeline.record(
                done,
                "trace.billed",
                vec![
                    ("trace", i.into()),
                    ("tenant", 1u32.into()),
                    ("machine", 0u64.into()),
                    ("cost", 1.0.into()),
                    ("predicted", 1.2.into()),
                ],
            );
        }
        timeline
    }

    fn queue_spec() -> SloSpec {
        SloSpec::queue_wait("interactive-wait", 50)
            .tenant(1)
            .objective(0.9)
            .rules(vec![BurnRateRule::new("page", 200, 400, 2.0)])
    }

    #[test]
    fn burn_alert_fires_and_clears_at_exact_boundaries() {
        // Slices 4..8 bad. Fast window = 2 slices, slow = 4, budget
        // 0.1, factor 2 → needs ≥ 20% bad in both windows. First
        // boundary where both hold is after slice 4 (fast 1/2, slow
        // 1/4); both drop under after slice 9 (fast 0/2).
        let timeline = wait_timeline(10, 100, &[4, 5, 6, 7]);
        let report = SloEngine::new().spec(queue_spec()).evaluate(&timeline, 100);
        assert_eq!(report.alerts.len(), 1);
        let alert = &report.alerts[0];
        assert_eq!(alert.fired_ms, 500);
        assert_eq!(alert.cleared_ms, Some(1_000));
        assert_eq!(alert.severity, "page");
        assert!(alert.peak_burn >= 5.0, "peak {}", alert.peak_burn);
        assert_eq!(report.telemetry.registry().counter("slo.alert.fired"), 1);
        assert_eq!(report.telemetry.registry().counter("slo.alert.cleared"), 1);
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#""name":"slo.alert""#));
        assert!(report.summary().contains("fired @ 500 ms"));
    }

    #[test]
    fn healthy_replay_raises_no_alert() {
        let timeline = wait_timeline(10, 100, &[]);
        let report = SloEngine::new().spec(queue_spec()).evaluate(&timeline, 100);
        assert!(report.alerts.is_empty());
        assert!(report.summary().contains("alerts: none"));
        // The burn series still exists, all-zero.
        assert_eq!(report.series.len(), 1);
        assert!(report.series[0].points.iter().all(|&(_, b)| b == 0.0));
    }

    #[test]
    fn alert_open_at_horizon_has_no_clear_time() {
        // Bad run continues through the final slice: span stays open.
        let timeline = wait_timeline(10, 100, &[6, 7, 8, 9]);
        let report = SloEngine::new().spec(queue_spec()).evaluate(&timeline, 100);
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.alerts[0].cleared_ms, None);
        assert!(report
            .to_jsonl()
            .contains(r#""end_ms":null,"name":"slo.alert""#));
        assert!(report.summary().contains("still firing"));
    }

    #[test]
    fn billing_rate_counts_every_slice() {
        let mut timeline = Timeline::new();
        // Tenant 0 spends 10.0 in slices 2 and 3 (100 ms slices →
        // 100/s), nothing elsewhere; horizon stretched to 1 s.
        for (trace, done) in [(0u64, 250u64), (1, 350)] {
            timeline.span(
                "trace.queue",
                done - 20,
                done - 10,
                vec![
                    ("trace", trace.into()),
                    ("tenant", 0u32.into()),
                    ("machine", 0u64.into()),
                    ("moves", 0u64.into()),
                ],
            );
            timeline.record(
                done,
                "trace.billed",
                vec![
                    ("trace", trace.into()),
                    ("tenant", 0u32.into()),
                    ("machine", 0u64.into()),
                    ("cost", 10.0.into()),
                    ("predicted", 1.0.into()),
                ],
            );
        }
        timeline.record(999, "tick", vec![]);
        let spec = SloSpec::billing_rate("spend-cap", 50.0)
            .tenant(0)
            .objective(0.9)
            .rules(vec![BurnRateRule::new("page", 100, 200, 1.0)]);
        let report = SloEngine::new().spec(spec).evaluate(&timeline, 100);
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.alerts[0].fired_ms, 300);
        assert_eq!(report.alerts[0].cleared_ms, Some(500));
    }

    #[test]
    fn rollups_and_gini_land_in_the_registry() {
        let timeline = wait_timeline(6, 100, &[1]);
        let report = SloEngine::new().evaluate(&timeline, 100);
        assert_eq!(report.rollups.len(), 1);
        assert_eq!(report.rollups[0].tenant, 1);
        assert_eq!(report.rollups[0].completions, 6);
        assert_eq!(report.gini_slowdown, 0.0); // single tenant
        assert!(report.to_jsonl().contains(r#""name":"tenant.rollup""#));
        assert!(report
            .to_jsonl()
            .contains(r#""type":"gauge","name":"fairness.gini_slowdown""#));
    }

    #[test]
    fn evaluation_is_a_pure_function_of_the_timeline() {
        let timeline = wait_timeline(12, 100, &[3, 4, 5]);
        let engine = SloEngine::new().spec(queue_spec());
        let a = engine.evaluate(&timeline, 100);
        let b = engine.evaluate(&timeline, 100);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.alerts, b.alerts);
    }
}
