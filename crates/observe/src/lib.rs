//! # litmus-observe
//!
//! SLO evaluation, fairness rollups and export tooling over the
//! deterministic telemetry the Litmus cluster stack emits.
//!
//! The cluster driver (with trace sampling on, see
//! `TelemetryConfig::trace_sampling`) gives every admitted invocation
//! a causal span chain on the replay timeline: admission → placement →
//! queue → execution → billing attribution. This crate evaluates those
//! completions two equivalent ways: *online*, fed sample by sample at
//! slice boundaries while the replay runs, and *post-hoc* over a
//! finished timeline — the post-hoc path is implemented on top of the
//! online engine, so the two provably agree event-for-event:
//!
//! * [`OnlineSloEngine`] — the incremental evaluator: feed it
//!   completions as they happen, advance it at slice boundaries, get
//!   [`SloAlert`] fired/cleared transitions back as a deterministic
//!   live control signal;
//! * [`SloEngine`] — declarative [`SloSpec`]s (per-tenant predicted-
//!   slowdown, queue-wait and billing-rate objectives) evaluated slice
//!   boundary by slice boundary with Google-SRE multi-window
//!   burn-rate rules; alerts are deterministic `slo.alert` open/close
//!   spans in the engine's own [`Telemetry`] export;
//! * [`fairness`] — per-tenant rollups (mean slowdown, queue wait,
//!   steal-victim counts, spend) and Gini coefficients;
//! * [`jsonl`] — a dependency-free parser for the flat JSONL export
//!   format, the substrate of the `litmus-obs` query tool;
//! * [`svg`] — a dependency-free SVG line-chart renderer for frontier
//!   curves and burn-rate timelines.
//!
//! ## Example
//!
//! ```
//! use litmus_observe::{BurnRateRule, SloEngine, SloSpec};
//! use litmus_telemetry::Timeline;
//!
//! let engine = SloEngine::new().spec(
//!     SloSpec::queue_wait("interactive-wait", 50)
//!         .tenant(1)
//!         .objective(0.99)
//!         .rules(vec![BurnRateRule::new("page", 200, 800, 4.0)]),
//! );
//! let report = engine.evaluate(&Timeline::new(), 20);
//! assert!(report.alerts.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fairness;
pub mod jsonl;
pub mod svg;

mod slo;
mod spans;

pub use fairness::{gini, rollups, TenantRollup};
pub use slo::{
    Alert, BurnRateRule, OnlineSloEngine, SloAlert, SloEngine, SloKind, SloReport, SloSeries,
    SloSpec, SloTransition,
};
pub use spans::{completions, horizon_ms, CompletionSample};

// The telemetry vocabulary reports are written in, re-exported so
// `litmus_observe` users don't need a direct `litmus-telemetry` dep.
pub use litmus_telemetry::{Telemetry, TelemetryConfig, Timeline};
