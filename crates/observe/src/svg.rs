//! A dependency-free SVG line-chart renderer.
//!
//! Purpose-built for the study harnesses: frontier curves, burn-rate
//! timelines and alert bands, written straight to an `.svg` file with
//! no graphics stack. The output is deterministic — fixed-precision
//! coordinates, styles inlined — so rendered charts diff cleanly in
//! review.

use std::fmt::Write;

/// One polyline series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Stroke color (any SVG color).
    pub color: String,
    /// `(x, y)` data points; non-finite points are skipped.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A new series.
    pub fn new(
        label: impl Into<String>,
        color: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> Self {
        Series {
            label: label.into(),
            color: color.into(),
            points,
        }
    }
}

/// Translucent vertical bands over the plot — alert windows on a time
/// axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// Legend label.
    pub label: String,
    /// Fill color.
    pub color: String,
    /// `(x_start, x_end)` intervals in data coordinates.
    pub spans: Vec<(f64, f64)>,
}

impl Band {
    /// A new band set.
    pub fn new(label: impl Into<String>, color: impl Into<String>, spans: Vec<(f64, f64)>) -> Self {
        Band {
            label: label.into(),
            color: color.into(),
            spans,
        }
    }
}

/// A shaded vertical envelope between two y-values per x — forecast
/// confidence bands laid under the actuals they predicted.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Legend label.
    pub label: String,
    /// Fill color.
    pub color: String,
    /// `(x, y_lo, y_hi)` triples in data coordinates; non-finite
    /// entries are skipped.
    pub points: Vec<(f64, f64, f64)>,
}

impl Region {
    /// A new envelope region.
    pub fn new(
        label: impl Into<String>,
        color: impl Into<String>,
        points: Vec<(f64, f64, f64)>,
    ) -> Self {
        Region {
            label: label.into(),
            color: color.into(),
            points,
        }
    }
}

/// A line chart with optional alert bands.
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    width: f64,
    height: f64,
    series: Vec<Series>,
    bands: Vec<Band>,
    regions: Vec<Region>,
}

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 36.0;
const MARGIN_BOTTOM: f64 = 48.0;

impl Chart {
    /// A new chart with the default 800×420 canvas.
    pub fn new(title: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            width: 800.0,
            height: 420.0,
            series: Vec::new(),
            bands: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Sets the canvas size (clamped to at least 200×160).
    pub fn size(mut self, width: f64, height: f64) -> Self {
        self.width = width.max(200.0);
        self.height = height.max(160.0);
        self
    }

    /// Sets the axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a series.
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a band set.
    pub fn band(mut self, band: Band) -> Self {
        self.bands.push(band);
        self
    }

    /// Adds an envelope region.
    pub fn region(mut self, region: Region) -> Self {
        self.regions.push(region);
        self
    }

    /// Renders the chart as a complete SVG document.
    pub fn render(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let plot_w = self.width - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = self.height - MARGIN_TOP - MARGIN_BOTTOM;
        let to_x = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
        let to_y = |y: f64| MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}" font-family="monospace" font-size="11">"#,
            self.width, self.height, self.width, self.height
        );
        let _ = writeln!(
            out,
            r#"<rect width="{:.0}" height="{:.0}" fill="white"/>"#,
            self.width, self.height
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
            self.width / 2.0,
            escape(&self.title)
        );

        // Alert bands under everything else.
        for band in &self.bands {
            for &(start, end) in &band.spans {
                if !start.is_finite() || !end.is_finite() || end <= start {
                    continue;
                }
                let x0 = to_x(start.max(x_min));
                let x1 = to_x(end.min(x_max));
                let _ = writeln!(
                    out,
                    r#"<rect x="{x0:.1}" y="{MARGIN_TOP:.1}" width="{:.1}" height="{plot_h:.1}" fill="{}" fill-opacity="0.18"/>"#,
                    (x1 - x0).max(0.5),
                    escape(&band.color)
                );
            }
        }

        // Envelope regions above the bands, below grid and series: a
        // closed polygon tracing the lower edge left→right then the
        // upper edge back.
        for region in &self.regions {
            let edges: Vec<(f64, f64, f64)> = region
                .points
                .iter()
                .copied()
                .filter(|&(x, lo, hi)| x.is_finite() && lo.is_finite() && hi.is_finite())
                .collect();
            if edges.len() < 2 {
                continue;
            }
            let mut path = String::new();
            for &(x, lo, _) in &edges {
                let _ = write!(path, "{:.1},{:.1} ", to_x(x), to_y(lo));
            }
            for &(x, _, hi) in edges.iter().rev() {
                let _ = write!(path, "{:.1},{:.1} ", to_x(x), to_y(hi));
            }
            let _ = writeln!(
                out,
                r#"<polygon points="{}" fill="{}" fill-opacity="0.15"/>"#,
                path.trim_end(),
                escape(&region.color)
            );
        }

        // Grid and tick labels.
        for tick in ticks(x_min, x_max) {
            let x = to_x(tick);
            let _ = writeln!(
                out,
                r##"<line x1="{x:.1}" y1="{MARGIN_TOP:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                MARGIN_TOP + plot_h
            );
            let _ = writeln!(
                out,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                MARGIN_TOP + plot_h + 16.0,
                fmt_tick(tick)
            );
        }
        for tick in ticks(y_min, y_max) {
            let y = to_y(tick);
            let _ = writeln!(
                out,
                r##"<line x1="{MARGIN_LEFT:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                MARGIN_LEFT + plot_w
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                MARGIN_LEFT - 6.0,
                y + 4.0,
                fmt_tick(tick)
            );
        }

        // Axes.
        let _ = writeln!(
            out,
            r#"<rect x="{MARGIN_LEFT:.1}" y="{MARGIN_TOP:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black"/>"#
        );
        if !self.x_label.is_empty() {
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                MARGIN_LEFT + plot_w / 2.0,
                self.height - 10.0,
                escape(&self.x_label)
            );
        }
        if !self.y_label.is_empty() {
            let _ = writeln!(
                out,
                r#"<text x="14" y="{:.1}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
                MARGIN_TOP + plot_h / 2.0,
                MARGIN_TOP + plot_h / 2.0,
                escape(&self.y_label)
            );
        }

        // Series polylines.
        for series in &self.series {
            let mut path = String::new();
            for &(x, y) in &series.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let _ = write!(path, "{:.1},{:.1} ", to_x(x), to_y(y));
            }
            if !path.is_empty() {
                let _ = writeln!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="1.5"/>"#,
                    path.trim_end(),
                    escape(&series.color)
                );
            }
        }

        // Legend: series, then regions, then bands.
        for (row, (label, color)) in self
            .series
            .iter()
            .map(|s| (&s.label, &s.color))
            .chain(self.regions.iter().map(|r| (&r.label, &r.color)))
            .chain(self.bands.iter().map(|b| (&b.label, &b.color)))
            .enumerate()
        {
            let y = MARGIN_TOP + 12.0 + row as f64 * 14.0;
            let _ = writeln!(
                out,
                r#"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="{}"/>"#,
                MARGIN_LEFT + 8.0,
                y - 9.0,
                escape(color)
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{y:.1}">{}</text>"#,
                MARGIN_LEFT + 22.0,
                escape(label)
            );
        }

        out.push_str("</svg>\n");
        out
    }

    /// Data bounds over all series and bands, padded to avoid
    /// degenerate (zero-width) ranges.
    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for series in &self.series {
            for &(x, y) in &series.points {
                if x.is_finite() && y.is_finite() {
                    x_min = x_min.min(x);
                    x_max = x_max.max(x);
                    y_min = y_min.min(y);
                    y_max = y_max.max(y);
                }
            }
        }
        for band in &self.bands {
            for &(start, end) in &band.spans {
                if start.is_finite() && end.is_finite() {
                    x_min = x_min.min(start);
                    x_max = x_max.max(end);
                }
            }
        }
        for region in &self.regions {
            for &(x, lo, hi) in &region.points {
                if x.is_finite() && lo.is_finite() && hi.is_finite() {
                    x_min = x_min.min(x);
                    x_max = x_max.max(x);
                    y_min = y_min.min(lo);
                    y_max = y_max.max(hi);
                }
            }
        }
        if !x_min.is_finite() {
            (x_min, x_max) = (0.0, 1.0);
        }
        if !y_min.is_finite() {
            (y_min, y_max) = (0.0, 1.0);
        }
        if x_max - x_min < 1e-12 {
            x_max = x_min + 1.0;
        }
        if y_max - y_min < 1e-12 {
            y_max = y_min + 1.0;
        }
        (x_min, x_max, y_min, y_max)
    }
}

/// ~5 round-valued ticks across `[min, max]`.
fn ticks(min: f64, max: f64) -> Vec<f64> {
    let step = nice_step((max - min) / 5.0);
    let first = (min / step).ceil() * step;
    let mut out = Vec::new();
    let mut tick = first;
    while tick <= max + step * 1e-9 {
        out.push(tick);
        tick += step;
    }
    out
}

/// Rounds `raw` up to the nearest 1/2/5 × 10^k.
fn nice_step(raw: f64) -> f64 {
    if raw <= 0.0 || !raw.is_finite() {
        return 1.0;
    }
    let exp = raw.log10().floor();
    let base = 10f64.powf(exp);
    let mantissa = raw / base;
    let nice = if mantissa <= 1.0 {
        1.0
    } else if mantissa <= 2.0 {
        2.0
    } else if mantissa <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * base
}

fn fmt_tick(value: f64) -> String {
    if value == 0.0 {
        return "0".to_owned();
    }
    if value.fract().abs() < 1e-9 && value.abs() < 1e9 {
        format!("{}", value.round() as i64)
    } else {
        let text = format!("{value:.3}");
        text.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_wellformed_document() {
        let svg = Chart::new("frontier")
            .labels("machines", "p99 slowdown")
            .series(Series::new(
                "reactive",
                "#d62728",
                vec![(1.0, 3.0), (2.0, 2.0), (4.0, 1.2)],
            ))
            .series(Series::new(
                "predictive",
                "#1f77b4",
                vec![(1.0, 2.5), (2.0, 1.6), (4.0, 1.1)],
            ))
            .band(Band::new("alert", "#ff7f0e", vec![(1.5, 2.5)]))
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("fill-opacity"));
        assert!(svg.contains("p99 slowdown"));
        // Balanced tags — every opened text/rect closes.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn region_envelope_renders_and_widens_the_bounds() {
        let svg = Chart::new("backtest")
            .series(Series::new("actual", "#333", vec![(0.0, 3.0), (10.0, 4.0)]))
            .region(Region::new(
                "forecast band",
                "#1f77b4",
                vec![(0.0, 1.0, 9.0), (10.0, 2.0, 12.0), (20.0, f64::NAN, 5.0)],
            ))
            .render();
        assert_eq!(svg.matches("<polygon").count(), 1);
        assert!(svg.contains("forecast band"));
        // The region's hi edge (12) sets y_max, so a gridline tick at
        // 10 exists even though no series climbs past 4.
        assert!(svg.contains(">10</text>"));
        // NaN entries are skipped, not rendered.
        assert!(!svg.contains("NaN"));
        // A region alone cannot render with fewer than two finite rows.
        let degenerate = Chart::new("thin")
            .region(Region::new("r", "red", vec![(1.0, 0.0, 1.0)]))
            .render();
        assert_eq!(degenerate.matches("<polygon").count(), 0);
    }

    #[test]
    fn empty_chart_does_not_panic_or_emit_nan() {
        let svg = Chart::new("empty").render();
        assert!(svg.contains("<svg"));
        assert!(!svg.contains("NaN"));
        let degenerate = Chart::new("flat")
            .series(Series::new("s", "red", vec![(2.0, 5.0), (2.0, 5.0)]))
            .render();
        assert!(!degenerate.contains("NaN"));
    }

    #[test]
    fn escapes_labels() {
        let svg = Chart::new("a<b&c").render();
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn ticks_are_round_values() {
        let t = ticks(0.0, 10.0);
        assert!(t.contains(&0.0) && t.contains(&10.0));
        assert_eq!(nice_step(0.3), 0.5);
        assert_eq!(nice_step(30.0), 50.0);
        assert_eq!(fmt_tick(2.0), "2");
        assert_eq!(fmt_tick(0.25), "0.25");
    }

    #[test]
    fn rendering_is_deterministic() {
        let chart =
            || Chart::new("t").series(Series::new("s", "blue", vec![(0.0, 0.1), (1.0, 0.7)]));
        assert_eq!(chart().render(), chart().render());
    }
}
