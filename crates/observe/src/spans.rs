//! Extraction of per-invocation completion samples from a replay's
//! `trace.*` span chains.
//!
//! The cluster driver (with trace sampling on) emits, per sampled
//! invocation: a `trace.queue` span (arrival → launch, with the number
//! of steal `moves`), a `trace.exec` span (launch → completion) and a
//! `trace.billed` attribution event (cost and predicted slowdown).
//! This module joins those records by trace id back into one
//! [`CompletionSample`] per completed invocation — the unit everything
//! downstream (SLO evaluation, fairness rollups, exemplar queries)
//! aggregates over.

use std::collections::BTreeMap;

use litmus_telemetry::{EventKind, FieldValue, Timeline, TimelineEvent};

/// One completed, sampled invocation, re-joined from its span chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionSample {
    /// Trace id (admission index in trace order).
    pub trace: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Machine the invocation executed on.
    pub machine: u64,
    /// Sim time the invocation arrived, ms.
    pub arrived_ms: u64,
    /// Sim time it launched (left the queue), ms.
    pub launched_ms: u64,
    /// Sim time it completed, ms.
    pub completed_ms: u64,
    /// Queue wait (launch − arrival), ms.
    pub wait_ms: u64,
    /// Times the invocation was moved by work stealing before launch.
    pub moves: u64,
    /// Litmus-priced cost of the invocation.
    pub cost: f64,
    /// Predicted slowdown used for billing attribution.
    pub predicted: f64,
}

/// Looks up a field by key on a timeline event.
pub(crate) fn field<'a>(event: &'a TimelineEvent, key: &str) -> Option<&'a FieldValue> {
    event.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

/// A field as an unsigned integer (`U64` only; ids and timestamps).
pub(crate) fn field_u64(event: &TimelineEvent, key: &str) -> Option<u64> {
    match field(event, key)? {
        FieldValue::U64(v) => Some(*v),
        _ => None,
    }
}

/// A field as a float (accepting integer encodings too).
pub(crate) fn field_f64(event: &TimelineEvent, key: &str) -> Option<f64> {
    match field(event, key)? {
        FieldValue::F64(v) => Some(*v),
        FieldValue::U64(v) => Some(*v as f64),
        FieldValue::I64(v) => Some(*v as f64),
        _ => None,
    }
}

/// Joins a replay timeline's `trace.queue` / `trace.billed` records
/// into one [`CompletionSample`] per completed invocation, ascending
/// by trace id. Invocations still queued or in flight at replay end
/// have no `trace.billed` record and are omitted.
pub fn completions(timeline: &Timeline) -> Vec<CompletionSample> {
    #[derive(Default)]
    struct Partial {
        queue: Option<(u64, u64, u64, u64)>, // arrived, launched, machine, moves
        billed: Option<(u64, u64, f64, f64)>, // completed, tenant, cost, predicted
    }
    let mut by_trace: BTreeMap<u64, Partial> = BTreeMap::new();
    for event in timeline.events() {
        match event.name {
            "trace.queue" => {
                let (Some(trace), Some(machine)) =
                    (field_u64(event, "trace"), field_u64(event, "machine"))
                else {
                    continue;
                };
                let launched = match event.kind {
                    EventKind::Span { end_ms: Some(end) } => end,
                    _ => continue,
                };
                let moves = field_u64(event, "moves").unwrap_or(0);
                by_trace.entry(trace).or_default().queue =
                    Some((event.at_ms, launched, machine, moves));
            }
            "trace.billed" => {
                let (Some(trace), Some(tenant)) =
                    (field_u64(event, "trace"), field_u64(event, "tenant"))
                else {
                    continue;
                };
                let cost = field_f64(event, "cost").unwrap_or(0.0);
                let predicted = field_f64(event, "predicted").unwrap_or(0.0);
                by_trace.entry(trace).or_default().billed =
                    Some((event.at_ms, tenant, cost, predicted));
            }
            _ => {}
        }
    }
    by_trace
        .into_iter()
        .filter_map(|(trace, partial)| {
            let (arrived_ms, launched_ms, machine, moves) = partial.queue?;
            let (completed_ms, tenant, cost, predicted) = partial.billed?;
            Some(CompletionSample {
                trace,
                tenant: tenant as u32,
                machine,
                arrived_ms,
                launched_ms,
                completed_ms,
                wait_ms: launched_ms.saturating_sub(arrived_ms),
                moves,
                cost,
                predicted,
            })
        })
        .collect()
}

/// The largest sim timestamp on the timeline (span ends included) —
/// the horizon SLO evaluation runs to. Zero for an empty timeline.
pub fn horizon_ms(timeline: &Timeline) -> u64 {
    timeline
        .events()
        .iter()
        .map(|event| match event.kind {
            EventKind::Span { end_ms: Some(end) } => event.at_ms.max(end),
            _ => event.at_ms,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(
        timeline: &mut Timeline,
        trace: u64,
        tenant: u32,
        arrive: u64,
        launch: u64,
        done: u64,
    ) {
        timeline.span(
            "trace.queue",
            arrive,
            launch,
            vec![
                ("trace", trace.into()),
                ("tenant", tenant.into()),
                ("machine", 1u64.into()),
                ("moves", 1u64.into()),
            ],
        );
        timeline.span(
            "trace.exec",
            launch,
            done,
            vec![("trace", trace.into()), ("tenant", tenant.into())],
        );
        timeline.record(
            done,
            "trace.billed",
            vec![
                ("trace", trace.into()),
                ("tenant", tenant.into()),
                ("machine", 1u64.into()),
                ("cost", 0.5.into()),
                ("predicted", 1.4.into()),
            ],
        );
    }

    #[test]
    fn joins_queue_and_billed_records_by_trace_id() {
        let mut timeline = Timeline::new();
        chain(&mut timeline, 3, 7, 100, 140, 200);
        chain(&mut timeline, 1, 2, 50, 50, 90);
        let samples = completions(&timeline);
        assert_eq!(samples.len(), 2);
        // Ascending by trace id, not emission order.
        assert_eq!(samples[0].trace, 1);
        assert_eq!(samples[0].wait_ms, 0);
        assert_eq!(samples[1].trace, 3);
        assert_eq!(samples[1].tenant, 7);
        assert_eq!(samples[1].wait_ms, 40);
        assert_eq!(samples[1].moves, 1);
        assert_eq!(samples[1].completed_ms, 200);
        assert_eq!(samples[1].cost, 0.5);
        assert_eq!(samples[1].predicted, 1.4);
    }

    #[test]
    fn unbilled_traces_are_omitted() {
        let mut timeline = Timeline::new();
        chain(&mut timeline, 0, 0, 0, 10, 30);
        // Trace 9 arrived but never completed: queue span only.
        timeline.span(
            "trace.queue",
            40,
            60,
            vec![("trace", 9u64.into()), ("machine", 0u64.into())],
        );
        assert_eq!(completions(&timeline).len(), 1);
    }

    #[test]
    fn horizon_covers_span_ends() {
        let mut timeline = Timeline::new();
        timeline.record(10, "tick", vec![]);
        timeline.span("trace.exec", 20, 500, vec![]);
        assert_eq!(horizon_ms(&timeline), 500);
        assert_eq!(horizon_ms(&Timeline::new()), 0);
    }
}
