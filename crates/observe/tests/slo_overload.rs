//! Planted-overload fixture: a fixed fleet takes a tenant-1 arrival
//! burst it cannot absorb, queue waits blow through the SLO, and the
//! burn-rate engine must fire a per-tenant alert at a deterministic
//! sim time — then clear it once the backlog drains. The whole
//! pipeline (replay span chains → SLO evaluation → alert JSONL) must
//! be byte-identical across worker-pool thread counts.

use litmus_cluster::{
    Cluster, ClusterConfig, ClusterDriver, ClusterReport, MachineConfig, RoundRobin,
    TelemetryConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_observe::{BurnRateRule, SloEngine, SloSpec};
use litmus_platform::{InvocationTrace, TenantId, TraceEvent};
use litmus_sim::MachineSpec;
use litmus_telemetry::assert_jsonl_eq;
use litmus_workloads::suite::{self, TenantClass};

const SLICE_MS: u64 = 20;
const BURST_START_MS: u64 = 1_000;
const BURST_END_MS: u64 = 1_300;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

fn config(threads: usize) -> ClusterConfig {
    let machines: Vec<_> = (0..2)
        .map(|i| {
            MachineConfig::new(4)
                .warmup_ms(60)
                .max_inflight(2)
                .seed(0x0B5E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 2, 4)
        .machines(machines)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(SLICE_MS)
}

/// Tenant 0 trickles steadily; tenant 1 lands 150 arrivals in a
/// 300 ms window starting at `BURST_START_MS` — far beyond what two
/// 4-core machines can launch promptly.
fn overload_trace() -> InvocationTrace {
    let interactive = suite::tenant_pool(TenantClass::Interactive);
    let analytics = suite::tenant_pool(TenantClass::Analytics);
    let mut events = Vec::new();
    for i in 0..80u64 {
        events.push(TraceEvent {
            at_ms: i * 50,
            function: interactive[i as usize % interactive.len()].clone(),
            tenant: TenantId(0),
        });
    }
    for i in 0..150u64 {
        events.push(TraceEvent {
            at_ms: BURST_START_MS + i * 2,
            function: analytics[i as usize % analytics.len()].clone(),
            tenant: TenantId(1),
        });
    }
    InvocationTrace::from_events(events)
}

fn replay(threads: usize) -> ClusterReport {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config(threads), tables, model).unwrap();
    ClusterDriver::new(RoundRobin::new())
        .telemetry(TelemetryConfig::default().trace_sampling(0x51_0A, 1.0))
        .replay(&mut cluster, &overload_trace())
        .unwrap()
}

fn engine() -> SloEngine {
    SloEngine::new().spec(
        SloSpec::queue_wait("analytics-wait", 50)
            .tenant(1)
            .objective(0.9)
            .rules(vec![BurnRateRule::new("page", 200, 600, 2.0)]),
    )
}

#[test]
fn overload_fires_a_per_tenant_alert_and_clears_after_recovery() {
    let report = replay(4);
    let slo = engine().evaluate(report.timeline(), SLICE_MS);

    assert_eq!(slo.alerts.len(), 1, "summary:\n{}", slo.summary());
    let alert = &slo.alerts[0];
    assert_eq!(alert.slo, "analytics-wait");
    assert_eq!(alert.tenant, Some(1));
    assert_eq!(alert.severity, "page");
    // Fires while the burst backlog is queued — never before the burst
    // lands, and within a second of it.
    assert!(
        (BURST_START_MS..BURST_END_MS + 1_000).contains(&alert.fired_ms),
        "fired at {} ms",
        alert.fired_ms
    );
    // Clears once the backlog drains, before the replay horizon.
    let cleared = alert.cleared_ms.expect("alert must clear after recovery");
    assert!(cleared > alert.fired_ms);
    assert!(cleared < slo.horizon_ms);
    assert!(alert.peak_burn >= 2.0);

    // The alert is on the exported timeline as an open/close span.
    let jsonl = slo.to_jsonl();
    assert!(jsonl.contains(r#""name":"slo.alert""#));
    assert!(jsonl.contains(r#""severity":"page""#));

    // Fairness rollups cover both tenants, and the burst shows up as
    // queue-wait skew against tenant 1.
    assert_eq!(slo.rollups.len(), 2);
    assert!(slo.rollups[1].mean_wait_ms > slo.rollups[0].mean_wait_ms);
}

#[test]
fn alert_boundaries_are_byte_identical_across_thread_counts() {
    let one = replay(1);
    let four = replay(4);
    assert_jsonl_eq(
        "threads=1",
        &one.timeline_jsonl(),
        "threads=4",
        &four.timeline_jsonl(),
    );
    let slo_one = engine().evaluate(one.timeline(), SLICE_MS);
    let slo_four = engine().evaluate(four.timeline(), SLICE_MS);
    assert_jsonl_eq(
        "threads=1",
        &slo_one.to_jsonl(),
        "threads=4",
        &slo_four.to_jsonl(),
    );
    assert_eq!(slo_one.alerts, slo_four.alerts);
}

#[test]
fn a_loose_objective_stays_quiet_on_the_same_overload() {
    let report = replay(4);
    let quiet = SloEngine::new()
        .spec(
            SloSpec::queue_wait("loose", 1_000_000)
                .tenant(1)
                .objective(0.5),
        )
        .evaluate(report.timeline(), SLICE_MS);
    assert!(quiet.alerts.is_empty(), "summary:\n{}", quiet.summary());
    assert_eq!(quiet.telemetry.registry().counter("slo.alert.fired"), 0);
}
