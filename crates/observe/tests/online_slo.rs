//! Online/post-hoc equivalence: an [`OnlineSloEngine`] fed completion
//! samples incrementally — at arbitrary (monotone) advance cadences,
//! including coarse jumps that finalize many boundaries at once, the
//! way the event-driven engine's bulk skip does — must agree with the
//! post-hoc [`SloEngine::evaluate`] of the same replay event-for-event.

use litmus_observe::{
    completions, horizon_ms, BurnRateRule, CompletionSample, OnlineSloEngine, SloAlert, SloEngine,
    SloSpec, SloTransition, Timeline,
};
use proptest::prelude::*;

const SLICE_MS: u64 = 100;

/// One completion per slice for tenant `t`: slices listed in `bad` get
/// a 100 ms queue wait and an expensive, slow completion; the rest are
/// healthy.
fn mixed_timeline(slices: u64, bad: &[u64]) -> Timeline {
    let mut timeline = Timeline::new();
    for i in 0..slices {
        let tenant = (i % 2) as u32;
        let done = i * SLICE_MS + SLICE_MS / 2;
        let is_bad = bad.contains(&i);
        let wait = if is_bad { 100 } else { 10 };
        let launch = done.saturating_sub(5);
        timeline.span(
            "trace.queue",
            launch.saturating_sub(wait),
            launch,
            vec![
                ("trace", i.into()),
                ("tenant", tenant.into()),
                ("machine", 0u64.into()),
                ("moves", 0u64.into()),
            ],
        );
        timeline.record(
            done,
            "trace.billed",
            vec![
                ("trace", i.into()),
                ("tenant", tenant.into()),
                ("machine", 0u64.into()),
                ("cost", if is_bad { 8.0 } else { 0.5 }.into()),
                ("predicted", if is_bad { 3.0 } else { 1.1 }.into()),
            ],
        );
    }
    timeline
}

fn specs() -> Vec<SloSpec> {
    vec![
        SloSpec::queue_wait("interactive-wait", 50)
            .objective(0.9)
            .rules(vec![
                BurnRateRule::new("page", 200, 400, 2.0),
                BurnRateRule::new("ticket", 400, 800, 1.0),
            ]),
        SloSpec::slowdown("even-slowdown", 2.0)
            .tenant(0)
            .objective(0.8),
        SloSpec::billing_rate("odd-spend", 20.0)
            .tenant(1)
            .objective(0.9)
            .rules(vec![BurnRateRule::new("page", 200, 400, 1.0)]),
    ]
}

/// Replays `samples` through a fresh online engine, advancing `now` by
/// `step` ms per round, and returns (transition stream, engine).
fn drive_online(
    samples: &[CompletionSample],
    horizon: u64,
    step: u64,
) -> (Vec<SloAlert>, OnlineSloEngine) {
    let mut online = OnlineSloEngine::new(specs(), SLICE_MS);
    let mut transitions = Vec::new();
    let mut fed = 0;
    let mut now = 0;
    while now < horizon {
        now = (now + step).min(horizon);
        while fed < samples.len() && samples[fed].completed_ms <= now {
            online.record(&samples[fed]);
            fed += 1;
        }
        transitions.extend(online.observe_boundary(now));
    }
    while fed < samples.len() {
        online.record(&samples[fed]);
        fed += 1;
    }
    transitions.extend(online.finish(horizon));
    (transitions, online)
}

/// Samples in completion order, the order a driver feeds them.
fn by_completion(timeline: &Timeline) -> Vec<CompletionSample> {
    let mut samples = completions(timeline);
    samples.sort_by(|a, b| {
        a.completed_ms
            .cmp(&b.completed_ms)
            .then(a.trace.cmp(&b.trace))
    });
    samples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_stream_matches_post_hoc_report(
        bad in prop::collection::vec(0u64..40, 0..16),
        slices in 8u64..40,
        step in 1u64..700,
    ) {
        let bad: Vec<u64> = bad.into_iter().filter(|b| *b < slices).collect();
        let timeline = mixed_timeline(slices, &bad);
        let engine = specs()
            .into_iter()
            .fold(SloEngine::new(), |e, s| e.spec(s));
        let report = engine.evaluate(&timeline, SLICE_MS);

        let samples = by_completion(&timeline);
        let horizon = horizon_ms(&timeline);
        let (transitions, online) = drive_online(&samples, horizon, step);

        // The full alert histories agree, including open-at-horizon
        // episodes and peak burns.
        prop_assert_eq!(online.alerts(), report.alerts.clone());

        // The transition stream is the report, event for event: fires
        // and clears in the same order at the same boundaries.
        let fires: Vec<(u64, String, &str)> = transitions
            .iter()
            .filter(|t| t.transition == SloTransition::Fired)
            .map(|t| (t.at_ms, t.slo.clone(), t.severity))
            .collect();
        let expected_fires: Vec<(u64, String, &str)> = report
            .alerts
            .iter()
            .map(|a| (a.fired_ms, a.slo.clone(), a.severity))
            .collect();
        prop_assert_eq!(fires, expected_fires);

        let mut clears: Vec<(u64, String, &str)> = transitions
            .iter()
            .filter(|t| t.transition == SloTransition::Cleared)
            .map(|t| (t.at_ms, t.slo.clone(), t.severity))
            .collect();
        let mut expected_clears: Vec<(u64, String, &str)> = report
            .alerts
            .iter()
            .filter(|a| a.cleared_ms.is_some())
            .map(|a| (a.cleared_ms.unwrap_or(0), a.slo.clone(), a.severity))
            .collect();
        clears.sort();
        expected_clears.sort();
        prop_assert_eq!(clears, expected_clears);

        // Open alerts are exactly the report's uncleared ones.
        prop_assert_eq!(
            online.active_alerts(),
            report
                .alerts
                .iter()
                .filter(|a| a.cleared_ms.is_none())
                .cloned()
                .collect::<Vec<_>>()
        );

        // The burn series the live engine accumulated is the report's.
        prop_assert_eq!(online.series(), report.series.clone());
    }

    #[test]
    fn advance_cadence_cannot_change_the_outcome(
        bad in prop::collection::vec(0u64..24, 0..10),
        slices in 8u64..24,
    ) {
        // Fine-grained advancing (every ms) vs one giant jump — the
        // bulk-skip shape — give identical histories.
        let bad: Vec<u64> = bad.into_iter().filter(|b| *b < slices).collect();
        let timeline = mixed_timeline(slices, &bad);
        let samples = by_completion(&timeline);
        let horizon = horizon_ms(&timeline);
        let (fine_stream, fine) = drive_online(&samples, horizon, 1);
        let (coarse_stream, coarse) = drive_online(&samples, horizon, horizon.max(1));
        prop_assert_eq!(fine_stream, coarse_stream);
        prop_assert_eq!(fine.alerts(), coarse.alerts());
        prop_assert_eq!(fine.series(), coarse.series());
    }
}

#[test]
fn transitions_land_at_the_boundary_they_became_decidable() {
    // Boundary b is only decidable once now > b: a sample completing
    // exactly at a pending boundary still belongs to the window that
    // boundary opens, so observe_boundary(b) must not finalize b.
    let mut online = OnlineSloEngine::new(
        vec![SloSpec::queue_wait("w", 50)
            .objective(0.9)
            .rules(vec![BurnRateRule::new("page", 100, 100, 1.0)])],
        100,
    );
    assert!(online.observe_boundary(100).is_empty());
    assert_eq!(online.finalized_through_ms(), 0);
    let fired = online.observe_boundary(101);
    assert_eq!(online.finalized_through_ms(), 100);
    assert!(fired.is_empty(), "no samples, no burn");
}

#[test]
fn finish_folds_at_horizon_completions_into_the_final_slice() {
    // One bad completion stamped exactly at the horizon: post-hoc
    // clamps it into the last slice; the online engine must agree.
    let mut timeline = Timeline::new();
    timeline.span(
        "trace.queue",
        290,
        400,
        vec![
            ("trace", 0u64.into()),
            ("tenant", 1u32.into()),
            ("machine", 0u64.into()),
            ("moves", 0u64.into()),
        ],
    );
    timeline.record(
        400,
        "trace.billed",
        vec![
            ("trace", 0u64.into()),
            ("tenant", 1u32.into()),
            ("machine", 0u64.into()),
            ("cost", 1.0.into()),
            ("predicted", 1.0.into()),
        ],
    );
    let spec = SloSpec::queue_wait("w", 50)
        .objective(0.9)
        .rules(vec![BurnRateRule::new("page", 100, 100, 1.0)]);
    let engine = SloEngine::new().spec(spec.clone());
    let report = engine.evaluate(&timeline, 100);

    let mut online = OnlineSloEngine::new(vec![spec], 100);
    let samples = completions(&timeline);
    for sample in &samples {
        online.record(sample);
    }
    online.observe_boundary(400);
    let transitions = online.finish(400);
    assert_eq!(online.alerts(), report.alerts);
    assert!(
        transitions
            .iter()
            .any(|t| t.transition == SloTransition::Fired && t.at_ms == 400),
        "the fold makes the final boundary fire: {transitions:?}"
    );
    assert!(online.finish(400).is_empty(), "finish is one-shot");
}
