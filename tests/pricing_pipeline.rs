//! End-to-end integration: tables → model → experiment → invoices.
//!
//! Uses small scales so the whole pipeline runs quickly in debug mode;
//! the full-scale reproduction lives in the bench harness
//! (`litmus-repro`).

use litmus::core::CalibrationEnv;
use litmus::prelude::*;

fn small_tables(spec: &MachineSpec) -> PricingTables {
    TableBuilder::new(spec.clone())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .expect("tables build")
}

#[test]
fn full_pipeline_produces_fair_prices() {
    let spec = MachineSpec::cascade_lake();
    let tables = small_tables(&spec);
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());

    let config = HarnessConfig::new(spec)
        .env(CoRunEnv::OnePerCore { co_runners: 16 })
        .mix_scale(0.04)
        .warmup_ms(150);
    let tests: Vec<Benchmark> = ["aes-py", "pager-py", "float-py", "auth-nj", "rate-go"]
        .iter()
        .map(|n| suite::by_name(n).unwrap())
        .collect();
    let results = PricingExperiment::new(config)
        .reps(2)
        .test_scale(0.04)
        .run(&pricing, &tables, &tests)
        .unwrap();

    for invoice in results.invoices() {
        // Litmus discounts but never pays the tenant.
        let norm = invoice.litmus_normalized();
        assert!(norm > 0.4 && norm < 1.0, "{}: {norm}", invoice.function);
        // Congestion genuinely slowed the function.
        assert!(invoice.ideal_normalized() < 1.0);
        // Components are consistent.
        assert!(invoice.litmus.private > 0.0);
        assert!(invoice.litmus.shared >= 0.0);
    }
    // The headline claim: litmus tracks ideal on average.
    assert!(
        results.discount_gap() < 0.05,
        "discount gap {} too wide",
        results.discount_gap()
    );
}

#[test]
fn method2_tables_work_under_sharing() {
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec.clone())
        .levels([8, 20])
        .env(CalibrationEnv::Shared {
            fillers: 20,
            cores: 4,
        })
        .languages([Language::Python, Language::Go])
        .reference_scale(0.02)
        .build()
        .unwrap();
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());

    let config = HarnessConfig::new(spec)
        .env(CoRunEnv::Shared {
            co_runners: 39,
            cores: 8,
        })
        .mix_scale(0.03)
        .warmup_ms(150);
    let tests = vec![
        suite::by_name("aes-py").unwrap(),
        suite::by_name("geo-go").unwrap(),
    ];
    let results = PricingExperiment::new(config)
        .reps(2)
        .test_scale(0.03)
        .run(&pricing, &tables, &tests)
        .unwrap();
    // Temporal sharing discounts exceed light one-per-core discounts.
    assert!(
        results.mean_ideal_discount() > 0.03,
        "sharing must slow functions meaningfully, got {}",
        results.mean_ideal_discount()
    );
    assert!(results.mean_litmus_discount() > 0.0);
    assert!(results.discount_gap() < 0.10);
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let spec = MachineSpec::cascade_lake();
        let tables = small_tables(&spec);
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        let config = HarnessConfig::new(spec)
            .env(CoRunEnv::OnePerCore { co_runners: 8 })
            .mix_scale(0.03)
            .warmup_ms(80);
        let tests = vec![suite::by_name("aes-py").unwrap()];
        PricingExperiment::new(config)
            .reps(2)
            .test_scale(0.03)
            .run(&pricing, &tables, &tests)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must reproduce identical invoices");
}

#[test]
fn commercial_is_always_the_ceiling() {
    let spec = MachineSpec::cascade_lake();
    let tables = small_tables(&spec);
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
    let config = HarnessConfig::new(spec)
        .env(CoRunEnv::OnePerCore { co_runners: 20 })
        .mix_scale(0.04)
        .warmup_ms(100);
    let tests = vec![
        suite::by_name("fib-nj").unwrap(),
        suite::by_name("float-py").unwrap(),
    ];
    let results = PricingExperiment::new(config)
        .reps(2)
        .test_scale(0.04)
        .run(&pricing, &tables, &tests)
        .unwrap();
    for invoice in results.invoices() {
        assert!(invoice.litmus.total() <= invoice.commercial.total());
        assert!(invoice.ideal.total() <= invoice.commercial.total() * 1.001);
    }
}
