//! End-to-end Azure-trace replay tests: the streaming `TraceSource`
//! path must be bit-identical to fully-materialized replay — same
//! `ClusterReport` (billing totals, latency stats, placements) at the
//! same seed — under every placement policy, at both the platform and
//! the cluster layer.

use litmus::prelude::*;
use litmus::trace::{fixture, multi_day_source, TransformedSource};

/// One compressed trace minute, ms (15-minute fixture → 3 s replay).
const MINUTE_MS: u64 = 200;
const SEED: u64 = 77;

fn expand_config() -> ExpandConfig {
    ExpandConfig::new(SEED).minute_ms(MINUTE_MS)
}

/// Thin and compress the fixture to a debug-friendly size; the
/// transform chain is part of what must stream identically — the
/// compression deliberately creates cross-tenant arrival ties, the
/// case where naive streaming would diverge from the materialized
/// canonical order.
fn transforms() -> Vec<TraceTransform> {
    vec![
        TraceTransform::ScaleRate {
            keep_fraction: 0.15,
            seed: 5,
        },
        TraceTransform::Compress { divisor: 2 },
    ]
}

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

fn cluster_config() -> ClusterConfig {
    let machines: Vec<_> = (0..3)
        .map(|i| {
            let background = if i == 0 { 12 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .seed(0xACE + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 3, 8)
        .machines(machines)
        .serving_scale(0.04)
        .threads(2)
        .slice_ms(20)
}

/// The thinned fixture, materialized.
fn materialized_trace() -> InvocationTrace {
    let trace = fixture::dataset().expand(expand_config()).unwrap();
    litmus::trace::apply(&trace, &transforms()).unwrap()
}

/// The same workload as a pure stream: expander → transform chain →
/// driver, nothing materialized.
fn streaming_source() -> impl TraceSource {
    let source = fixture::dataset().source(expand_config()).unwrap();
    TransformedSource::new(source, transforms()).unwrap()
}

fn replay_materialized<P: PlacementPolicy>(policy: P, trace: &InvocationTrace) -> ClusterReport {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(cluster_config(), tables, model).unwrap();
    ClusterDriver::new(policy)
        .replay(&mut cluster, trace)
        .unwrap()
}

fn replay_streaming<P: PlacementPolicy>(policy: P) -> ClusterReport {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(cluster_config(), tables, model).unwrap();
    ClusterDriver::new(policy)
        .replay_source(&mut cluster, streaming_source())
        .unwrap()
}

#[test]
fn streaming_cluster_replay_is_bit_identical_for_every_policy() {
    let trace = materialized_trace();
    assert!(
        trace.len() > 200,
        "thinned fixture too small: {}",
        trace.len()
    );

    let round_robin = replay_materialized(RoundRobin::new(), &trace);
    assert_eq!(round_robin, replay_streaming(RoundRobin::new()));

    let least_loaded = replay_materialized(LeastLoaded::new(), &trace);
    assert_eq!(least_loaded, replay_streaming(LeastLoaded::new()));

    let litmus_aware = replay_materialized(LitmusAware::new(), &trace);
    assert_eq!(litmus_aware, replay_streaming(LitmusAware::new()));

    // The reports are real replays, not vacuous equalities: everything
    // completed and every fixture tenant was billed.
    for report in [&round_robin, &least_loaded, &litmus_aware] {
        assert_eq!(report.completed, trace.len());
        assert_eq!(report.unfinished, 0);
        assert!(report.mean_latency_ms > 0.0);
        assert!(report.billing.total().litmus_revenue() > 0.0);
        assert!(
            report.billing.total().litmus_revenue()
                <= report.billing.total().commercial_revenue() * (1.0 + 1e-9)
        );
    }
    let billed_tenants = litmus_aware.billing.tenants().count();
    assert_eq!(billed_tenants, trace.tenants().len());
}

#[test]
fn event_driven_two_day_replay_is_bit_identical_to_slice_stepping() {
    // The event engine's acceptance fixture: a two-day chain of the
    // Azure fixture (shared tenant map, second day offset onto the
    // first's end), thinned and compressed like the other tests.
    // Slice stepping is the oracle; the event-driven replay must match
    // it bit-for-bit — full report AND telemetry JSONL, including the
    // per-invocation span chains (tracing at rate 1.0). The JSONL is
    // compared line-by-line so a divergence points at the first
    // differing event instead of dumping two multi-megabyte strings.
    let days = [fixture::dataset(), fixture::dataset()];
    let two_day = || {
        let source = multi_day_source(&days, expand_config()).unwrap();
        TransformedSource::new(source, transforms()).unwrap()
    };
    let traced = || TelemetryConfig::default().trace_sampling(0x7ACE, 1.0);
    let (tables, model) = calibration();
    let mut slice_cluster =
        Cluster::build(cluster_config(), tables.clone(), model.clone()).unwrap();
    let slice = ClusterDriver::new(LitmusAware::new())
        .telemetry(traced())
        .replay_source(&mut slice_cluster, two_day())
        .unwrap();
    let mut event_cluster = Cluster::build(
        cluster_config().stepping(SteppingMode::EventDriven),
        tables,
        model,
    )
    .unwrap();
    let event = ClusterDriver::new(LitmusAware::new())
        .telemetry(traced())
        .replay_source(&mut event_cluster, two_day())
        .unwrap();
    litmus::telemetry::assert_jsonl_eq(
        "slice",
        &slice.timeline_jsonl(),
        "event",
        &event.timeline_jsonl(),
    );
    assert_eq!(slice, event);
    // The replay is real: both fixture days completed in full and the
    // chain spanned both days' compressed spans (the transform chain's
    // Compress{divisor: 2} halves the 2 × 15-minute extent).
    assert!(slice.completed > 400, "completed {}", slice.completed);
    assert_eq!(slice.unfinished, 0);
    assert!(slice.sim_ms >= 2 * 15 * MINUTE_MS / 2);
}

#[test]
fn streaming_platform_replay_matches_materialized() {
    // Single-machine metering pipeline: webshop's traffic only,
    // streamed vs materialized.
    let keep = vec![TraceTransform::Subsample {
        tenants: vec![TenantId(3)], // c0ffee01/webshop in sorted app order
    }];
    let full = fixture::dataset().expand(expand_config()).unwrap();
    let trace = litmus::trace::apply(&full, &keep).unwrap();
    assert!(!trace.is_empty());

    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
    let driver = litmus::platform::TraceDriver::new(MachineSpec::cascade_lake(), 8)
        .scale(0.04)
        .drain_ms(30_000);

    let materialized = driver.replay(&trace, &pricing, &tables).unwrap();
    let source =
        TransformedSource::new(fixture::dataset().source(expand_config()).unwrap(), keep).unwrap();
    let streamed = driver.replay_source(source, &pricing, &tables).unwrap();
    assert_eq!(materialized, streamed);
    assert_eq!(materialized.ledger.len(), trace.len());
}
