//! Integration coverage for the scheduling/metering extensions through
//! the facade crate: monitoring, admission, cluster dispatch and trace
//! replay all composing on the same tables and model.

use litmus::platform::{InvocationTrace, TraceDriver};
use litmus::prelude::*;
use litmus::workloads::Language;

fn setup() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

#[test]
fn monitor_admission_and_cluster_share_one_calibration() {
    let (tables, model) = setup();

    // Monitor: a Fig. 7 series on a moderately busy machine.
    let monitor = CongestionMonitor::new(&tables, model.clone(), Language::Python).unwrap();
    let mut harness = CoRunHarness::start(
        HarnessConfig::new(MachineSpec::cascade_lake())
            .env(CoRunEnv::OnePerCore { co_runners: 12 })
            .mix_scale(0.04)
            .warmup_ms(80),
    )
    .unwrap();
    let series = monitor.series(&mut harness, 3, 40).unwrap();
    assert_eq!(series.len(), 3);
    for sample in &series {
        assert!(sample.level.is_finite());
        assert!(sample.reading.shared_slowdown > 0.9);
    }

    // Admission: same monitor drives defer/admit.
    let monitor2 = CongestionMonitor::new(&tables, model.clone(), Language::Python).unwrap();
    let mut controller = AdmissionController::new(monitor2, 30.0);
    let profile = suite::by_name("auth-py")
        .unwrap()
        .profile()
        .scaled(0.04)
        .unwrap();
    let decision = controller.try_admit(&mut harness, profile).unwrap();
    assert!(decision.is_admitted(), "level {}", decision.level());

    // Cluster: two machines (one hot, one cool), probe-balanced
    // dispatch works end to end — what the retired `Fleet` did, now
    // through `litmus::cluster`.
    let machines = vec![
        MachineConfig::new(8)
            .background(20)
            .background_scale(0.04)
            .warmup_ms(60)
            .seed(0xF1EE7),
        MachineConfig::new(8)
            .background(2)
            .background_scale(0.04)
            .warmup_ms(60)
            .seed(0xF1EE8),
    ];
    let config = ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 2, 8)
        .machines(machines)
        .serving_scale(0.04)
        .threads(2);
    let trace = InvocationTrace::poisson(suite::benchmarks(), 80.0, 1_000, 3).unwrap();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let report = ClusterDriver::new(LitmusAware::new())
        .replay(&mut cluster, &trace)
        .unwrap();
    assert_eq!(report.completed, trace.len());
    assert_eq!(report.dispatch_counts.iter().sum::<usize>(), trace.len());
    // Probe-driven routing favours the cool machine.
    assert!(report.dispatch_counts[0] < report.dispatch_counts[1]);
}

#[test]
fn trace_replay_bills_consistently_with_the_experiment_loop() {
    let (tables, model) = setup();
    let pricing = LitmusPricing::new(model);

    let trace =
        InvocationTrace::poisson(suite::benchmarks(), 100.0, 600, 11).expect("non-empty pool");
    let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 8)
        .scale(0.03)
        .drain_ms(30_000)
        .replay(&trace, &pricing, &tables)
        .unwrap();

    assert_eq!(outcome.unfinished, 0);
    assert_eq!(outcome.ledger.len(), trace.len());
    // Every invoice respects the price envelope.
    for invoice in outcome.ledger.invoices() {
        assert!(invoice.litmus.total() <= invoice.commercial.total() * (1.0 + 1e-9));
        assert!(invoice.litmus.total() > 0.0);
    }
    // Aggregate ledger identities.
    let ledger = &outcome.ledger;
    assert!(
        (ledger.commercial_revenue() - ledger.litmus_revenue() - ledger.total_compensation()).abs()
            < 1e-6 * ledger.commercial_revenue()
    );
    assert!(ledger.average_discount() >= 0.0);
}

#[test]
fn cluster_layer_composes_through_the_facade() {
    let (tables, model) = setup();

    // Same calibration drives a small skewed cluster end to end: the
    // ledger-level identities of the single-machine pipeline must
    // survive sharded, multi-machine metering.
    let machines: Vec<_> = (0..3)
        .map(|i| {
            MachineConfig::new(6)
                .background(if i == 0 { 12 } else { 0 })
                .background_scale(0.04)
                .warmup_ms(60)
                .seed(0xFACADE + i as u64)
        })
        .collect();
    let config = ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 3, 6)
        .machines(machines)
        .serving_scale(0.04)
        .threads(2);
    let trace = InvocationTrace::poisson(suite::benchmarks(), 60.0, 1_500, 5).unwrap();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let outcome = ClusterDriver::new(LitmusAware::new())
        .replay(&mut cluster, &trace)
        .unwrap();

    assert_eq!(outcome.completed, trace.len());
    assert_eq!(outcome.unfinished, 0);
    let total = outcome.billing.total();
    assert!(total.litmus_revenue() <= total.commercial_revenue() * (1.0 + 1e-9));
    assert!(
        (total.commercial_revenue() - total.litmus_revenue() - total.total_compensation()).abs()
            < 1e-6 * total.commercial_revenue()
    );
    assert!(total.average_discount() >= 0.0);
    // The single default tenant holds the whole period.
    let tenant = outcome.billing.tenant(TenantId::default()).unwrap();
    assert_eq!(tenant.len(), trace.len());
    // The pre-loaded machine receives the least traffic.
    assert!(outcome.dispatch_counts[0] < outcome.dispatch_counts[1]);
    assert!(outcome.dispatch_counts[0] < outcome.dispatch_counts[2]);
}
