//! Integration coverage for the scheduling/metering extensions through
//! the facade crate: monitoring, admission, fleet dispatch and trace
//! replay all composing on the same tables and model.

use litmus::platform::{Fleet, InvocationTrace, TraceDriver};
use litmus::prelude::*;
use litmus::workloads::Language;

fn setup() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

#[test]
fn monitor_admission_and_fleet_share_one_calibration() {
    let (tables, model) = setup();

    // Monitor: a Fig. 7 series on a moderately busy machine.
    let monitor =
        CongestionMonitor::new(&tables, model.clone(), Language::Python).unwrap();
    let mut harness = CoRunHarness::start(
        HarnessConfig::new(MachineSpec::cascade_lake())
            .env(CoRunEnv::OnePerCore { co_runners: 12 })
            .mix_scale(0.04)
            .warmup_ms(80),
    )
    .unwrap();
    let series = monitor.series(&mut harness, 3, 40).unwrap();
    assert_eq!(series.len(), 3);
    for sample in &series {
        assert!(sample.level.is_finite());
        assert!(sample.reading.shared_slowdown > 0.9);
    }

    // Admission: same monitor drives defer/admit.
    let monitor2 =
        CongestionMonitor::new(&tables, model.clone(), Language::Python).unwrap();
    let mut controller = AdmissionController::new(monitor2, 30.0);
    let profile = suite::by_name("auth-py")
        .unwrap()
        .profile()
        .scaled(0.04)
        .unwrap();
    let decision = controller.try_admit(&mut harness, profile).unwrap();
    assert!(decision.is_admitted(), "level {}", decision.level());

    // Fleet: two machines, probe-balanced dispatch works end to end.
    let monitor3 =
        CongestionMonitor::new(&tables, model, Language::Python).unwrap();
    let configs = vec![
        HarnessConfig::new(MachineSpec::cascade_lake())
            .env(CoRunEnv::OnePerCore { co_runners: 20 })
            .mix_scale(0.04)
            .warmup_ms(60),
        HarnessConfig::new(MachineSpec::cascade_lake())
            .env(CoRunEnv::OnePerCore { co_runners: 2 })
            .mix_scale(0.04)
            .warmup_ms(60),
    ];
    let mut fleet = Fleet::start(configs, monitor3).unwrap();
    let profile = suite::by_name("fib-go")
        .unwrap()
        .profile()
        .scaled(0.04)
        .unwrap();
    let (_, report) = fleet.dispatch(profile).unwrap();
    assert_eq!(report.name, "fib-go");
    assert_eq!(fleet.dispatch_counts().iter().sum::<usize>(), 1);
}

#[test]
fn trace_replay_bills_consistently_with_the_experiment_loop() {
    let (tables, model) = setup();
    let pricing = LitmusPricing::new(model);

    let trace = InvocationTrace::poisson(suite::benchmarks(), 100.0, 600, 11)
        .expect("non-empty pool");
    let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 8)
        .scale(0.03)
        .drain_ms(30_000)
        .replay(&trace, &pricing, &tables)
        .unwrap();

    assert_eq!(outcome.unfinished, 0);
    assert_eq!(outcome.ledger.len(), trace.len());
    // Every invoice respects the price envelope.
    for invoice in outcome.ledger.invoices() {
        assert!(invoice.litmus.total() <= invoice.commercial.total() * (1.0 + 1e-9));
        assert!(invoice.litmus.total() > 0.0);
    }
    // Aggregate ledger identities.
    let ledger = &outcome.ledger;
    assert!(
        (ledger.commercial_revenue() - ledger.litmus_revenue()
            - ledger.total_compensation())
        .abs()
            < 1e-6 * ledger.commercial_revenue()
    );
    assert!(ledger.average_discount() >= 0.0);
}
