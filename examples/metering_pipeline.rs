//! End-to-end metering pipeline: a Poisson arrival trace replayed on a
//! shared-core machine, every invocation Litmus-tested and invoiced,
//! and the accounting period summarised from the ledger — how a
//! provider would actually run Litmus pricing in production.
//!
//! Run with: `cargo run --release --example metering_pipeline`

use litmus::platform::{InvocationTrace, TraceDriver};
use litmus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    println!("building tables + model…");
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22, 30])
        .reference_scale(0.08)
        .build()?;
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);

    // ~80 invocations/s for 3 s onto 12 shared cores.
    let trace =
        InvocationTrace::poisson(suite::benchmarks(), 80.0, 3_000, 2024).expect("non-empty pool");
    println!("replaying {} invocations…", trace.len());
    let outcome = TraceDriver::new(spec, 12)
        .scale(0.1)
        .replay(&trace, &pricing, &tables)?;

    let ledger = &outcome.ledger;
    println!("\n=== accounting period summary ===");
    println!("invoices:              {}", ledger.len());
    println!("unfinished at horizon: {}", outcome.unfinished);
    println!("mean latency:          {:.1} ms", outcome.mean_latency_ms);
    println!(
        "commercial revenue:    {:.3e} cycle-units",
        ledger.commercial_revenue()
    );
    println!(
        "litmus revenue:        {:.3e} cycle-units",
        ledger.litmus_revenue()
    );
    println!(
        "tenant compensation:   {:.3e} ({:.1}% average discount)",
        ledger.total_compensation(),
        ledger.average_discount() * 100.0
    );

    // Per-function drill-down for the three busiest functions.
    let mut by_fn: std::collections::BTreeMap<&str, (usize, f64)> =
        std::collections::BTreeMap::new();
    for invoice in ledger.invoices() {
        let entry = by_fn.entry(invoice.function.as_str()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += invoice.litmus_discount();
    }
    let mut rows: Vec<_> = by_fn.into_iter().collect();
    rows.sort_by_key(|(_, (count, _))| std::cmp::Reverse(*count));
    println!(
        "\n{:14} {:>8} {:>14}",
        "function", "invokes", "avg discount"
    );
    for (name, (count, discount_sum)) in rows.into_iter().take(8) {
        println!(
            "{name:14} {count:>8} {:>13.1}%",
            discount_sum / count as f64 * 100.0
        );
    }
    Ok(())
}
