//! Full-dataset ingestion drill, sized for CI: split the bundled
//! fixture into per-family shards in a temp directory the way the real
//! Azure Functions 2019 download is split per day, prove the
//! shard-aware `from_dir` parses them to the *identical* dataset, then
//! punch holes in the data the way the real dataset ships with them
//! and show the lossy-ingest accounting.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use litmus::prelude::*;
use litmus::trace::test_support::{write_sharded, TempDir};
use litmus::trace::{fixture, IngestMode, IngestReport, LossyIngest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unsharded = fixture::dataset();

    // 1. Shard-aware ingestion: two invocation shards, three duration
    //    shards, two memory shards, data rows dealt round-robin — a
    //    worst-case interleaved partition. The merged `from_dir` must
    //    equal the unsharded parse bit for bit.
    let dir = TempDir::new("sharded-ingest");
    write_sharded(
        &dir,
        "invocations_per_function",
        fixture::INVOCATIONS_CSV,
        2,
    );
    write_sharded(&dir, "function_durations", fixture::DURATIONS_CSV, 3);
    write_sharded(&dir, "app_memory", fixture::MEMORY_CSV, 2);
    let (sharded, report) = AzureDataset::from_dir_with(dir.path(), IngestMode::Strict)?;
    assert_eq!(
        sharded, unsharded,
        "sharded parse must be identical to the unsharded parse"
    );
    assert!(report.is_balanced());
    println!(
        "sharded parse ✓  ({} functions from {}/{}/{} shards, identical to \
         the unsharded fixture)",
        report.functions, report.invocation_shards, report.duration_shards, report.memory_shards,
    );

    // 2. Lossy ingestion: drop duration rows for a third of the
    //    functions, zero out one row's Count, and orphan a memory row
    //    — the real dataset's shape. Strict must refuse; lossy must
    //    account for every row.
    let mut durations: Vec<&str> = fixture::DURATIONS_CSV.lines().collect();
    let header = durations.remove(0);
    let holes: Vec<String> = durations
        .iter()
        .enumerate()
        .filter(|(idx, _)| idx % 3 != 0) // every third function loses its row
        .map(|(idx, line)| {
            if idx == 1 {
                // One surviving row claims zero sampled executions.
                let mut cells: Vec<String> = line.split(',').map(str::to_owned).collect();
                cells[4] = "0".into();
                cells.join(",")
            } else {
                (*line).to_owned()
            }
        })
        .collect();
    let holey_durations = format!("{header}\n{}\n", holes.join("\n"));
    let orphan_memory = format!(
        "{}fa11back,ghostapp,4,48,30,33,40,46,52,60,66,70\n",
        fixture::MEMORY_CSV
    );

    assert!(
        AzureDataset::from_csv(fixture::INVOCATIONS_CSV, &holey_durations, &orphan_memory).is_err(),
        "strict ingestion must refuse incomplete data"
    );
    let mut reports: Vec<(&str, IngestReport)> = Vec::new();
    for (label, policy) in [
        ("lossy-skip", LossyIngest::Skip),
        ("lossy-impute", LossyIngest::ImputeMedians),
    ] {
        let (dataset, report) = AzureDataset::from_csv_with(
            fixture::INVOCATIONS_CSV,
            &holey_durations,
            &orphan_memory,
            IngestMode::Lossy(policy),
        )?;
        println!("\n{label}: {report}");
        assert!(report.is_balanced(), "{label}: counters must balance");
        assert_eq!(
            report.functions,
            dataset.functions().len() as u64,
            "{label}"
        );
        assert_eq!(report.zero_count_durations_skipped, 1, "{label}");
        reports.push((label, report));
    }
    let (_, skip) = &reports[0];
    let (_, impute) = &reports[1];
    assert!(skip.missing_duration_skipped > 0);
    assert_eq!(impute.missing_duration_skipped, 0);
    // Skipping functions cascades: apps whose every function dropped
    // orphan their memory rows too (ghost app + two single-function
    // apps); imputation keeps those apps alive, so only the ghost app
    // orphans.
    assert_eq!(skip.orphan_memory_skipped, 3);
    assert_eq!(impute.orphan_memory_skipped, 1);
    assert_eq!(
        impute.functions,
        skip.functions + impute.imputed(),
        "imputation keeps exactly the functions skip drops"
    );

    // 3. The lossy dataset still expands and replays like any other.
    let (dataset, _) = AzureDataset::from_csv_with(
        fixture::INVOCATIONS_CSV,
        &holey_durations,
        &orphan_memory,
        IngestMode::Lossy(LossyIngest::ImputeMedians),
    )?;
    let trace = dataset.expand(ExpandConfig::new(7).minute_ms(400))?;
    assert_eq!(trace.len() as u64, dataset.total_invocations());
    println!(
        "\nimputed dataset expands cleanly: {} invocations across {} tenants ✓",
        trace.len(),
        trace.tenants().len()
    );
    Ok(())
}
