//! Quickstart: price a single serverless invocation with Litmus.
//!
//! Walks the full pipeline on a congested machine: offline table
//! construction, model fitting, one function execution whose startup
//! doubles as the Litmus test, and the resulting bill next to the
//! commercial (no-discount) and ideal (oracle) prices.
//!
//! Run with: `cargo run --release --example quickstart`

use litmus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();

    // ── 1. Provider side (offline): stress the machine with CT-Gen and
    //       MB-Gen, recording startup and reference-function slowdowns.
    println!("building congestion/performance tables…");
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22, 30])
        .reference_scale(0.1)
        .build()?;
    let model = DiscountModel::fit(&tables)?;
    let pricing = LitmusPricing::new(model);

    // ── 2. Production: a machine running 26 random co-tenants.
    println!("warming up a 26-co-runner machine…");
    let config = HarnessConfig::new(spec.clone())
        .env(CoRunEnv::OnePerCore { co_runners: 26 })
        .mix_scale(0.2);
    let mut machine = CoRunHarness::start(config)?;

    // ── 3. A tenant invokes `pager-py` (PageRank in Python).
    let bench = suite::by_name("pager-py").expect("table-1 benchmark");
    let profile = bench.profile().scaled(0.2)?;
    let report = machine.measure(profile.clone())?;

    // The startup window *is* the Litmus test.
    let baseline = tables.baseline(bench.language())?;
    let startup = report.startup.as_ref().expect("profile has a startup");
    let reading = LitmusReading::from_startup(baseline, startup)?;
    println!(
        "\nLitmus test: startup ran {:.2}x (private) / {:.2}x (shared) vs solo,\n\
         machine L3 traffic {:.0} misses/ms",
        reading.private_slowdown, reading.shared_slowdown, reading.l3_miss_rate
    );
    let estimate = pricing.estimate(&reading)?;
    println!(
        "presumed slowdown: private {:.3}, shared {:.3} (CT↔MB weight {:.2})",
        estimate.private_slowdown, estimate.shared_slowdown, estimate.weight
    );

    // ── 4. The three bills.
    let commercial = CommercialPricing::new().price(&report.counters);
    let litmus = pricing.price(&reading, &report.counters)?;
    // Oracle: what the same work costs on an idle machine.
    let mut solo_sim = Simulator::new(spec);
    let id = solo_sim.launch(profile, Placement::pinned(0))?;
    let solo = solo_sim.run_to_completion(id)?;
    let ideal = IdealPricing::new().price(&report.counters, &solo.counters);

    println!(
        "\n{:12} {:>14} {:>12} {:>10}",
        "scheme", "price (cycles)", "normalised", "discount"
    );
    for (name, price) in [
        ("commercial", commercial),
        ("litmus", litmus),
        ("ideal", ideal),
    ] {
        println!(
            "{:12} {:>14.3e} {:>12.4} {:>9.1}%",
            name,
            price.total(),
            price.normalized_to(&commercial),
            price.discount_vs(&commercial) * 100.0
        );
    }
    Ok(())
}
