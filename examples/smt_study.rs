//! Simultaneous multithreading study (paper §8, Fig. 21): enabling SMT
//! doubles the hardware threads but makes siblings share the whole
//! core, roughly doubling execution times — and Litmus pricing still
//! tracks the (much larger) ideal discount.
//!
//! Run with: `cargo run --release --example smt_study`

use litmus::core::CalibrationEnv;
use litmus::prelude::*;

fn run_config(smt: bool) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut spec = MachineSpec::cascade_lake();
    if smt {
        spec.smt_ways = 2;
    }
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22])
        .env(CalibrationEnv::Shared {
            fillers: 50,
            cores: 5,
        })
        .reference_scale(0.05)
        .build()?;
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);

    let config = HarnessConfig::new(spec)
        .env(CoRunEnv::Shared {
            co_runners: 159,
            cores: 16,
        })
        .mix_scale(0.1);
    let tests: Vec<Benchmark> = ["aes-py", "pager-py", "float-py", "geo-go"]
        .iter()
        .map(|n| suite::by_name(n).unwrap())
        .collect();
    let results = PricingExperiment::new(config)
        .reps(3)
        .test_scale(0.1)
        .run(&pricing, &tables, &tests)?;
    Ok((results.gmean_litmus_price(), results.gmean_ideal_price()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("running SMT-off configuration…");
    let (litmus_off, ideal_off) = run_config(false)?;
    println!("running SMT-on configuration…");
    let (litmus_on, ideal_on) = run_config(true)?;

    println!(
        "\n{:10} {:>14} {:>14}",
        "config", "litmus price", "ideal price"
    );
    println!("{:10} {:>14.4} {:>14.4}", "SMT off", litmus_off, ideal_off);
    println!("{:10} {:>14.4} {:>14.4}", "SMT on", litmus_on, ideal_on);
    println!(
        "\nSMT drives prices far lower (paper: ideal 0.473, litmus 0.546):\n\
         sibling interference slows everything, and Litmus compensates."
    );
    assert!(
        litmus_on < litmus_off,
        "SMT must increase the discount (lower normalised price)"
    );
    Ok(())
}
