//! Temporal CPU sharing (paper §7.2): 160 functions time-sharing 16
//! cores, priced with the two methods the paper proposes —
//!
//! * **Method 1**: reuse dedicated-environment tables, but divide the
//!   measured `T_private` by the Fig. 14 switching-overhead factor;
//! * **Method 2**: rebuild the tables in a sharing-enabled calibration
//!   environment (50 functions across 5 cores) and use them directly.
//!
//! The paper finds Method 2 nearly ideal (17.2% vs 17.4% discount)
//! while Method 1 under-discounts by a few points.
//!
//! Run with: `cargo run --release --example temporal_sharing`

use litmus::core::CalibrationEnv;
use litmus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    let scale = 0.1;
    let tests: Vec<Benchmark> = [
        "aes-py", "dyn-py", "pager-py", "float-py", "auth-nj", "geo-go",
    ]
    .iter()
    .map(|n| suite::by_name(n).unwrap())
    .collect();
    let env = CoRunEnv::Shared {
        co_runners: 159,
        cores: 16,
    };

    // ── Method 1: dedicated tables + switch-factor calibration.
    println!("building dedicated-environment tables (Method 1)…");
    let dedicated = TableBuilder::new(spec.clone())
        .levels([6, 14, 22, 30])
        .reference_scale(0.08)
        .build()?;
    let factor = spec.switch_factor(env.functions_per_core());
    let method1 = LitmusPricing::new(DiscountModel::fit(&dedicated)?)
        .with_method(Method::CalibratedSharing { factor });
    println!(
        "  switch factor at {} functions/core: {:.4}",
        env.functions_per_core(),
        factor
    );

    // ── Method 2: tables rebuilt under sharing (50 fns / 5 cores).
    println!("building sharing-enabled tables (Method 2)…");
    let shared_tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22])
        .env(CalibrationEnv::Shared {
            fillers: 50,
            cores: 5,
        })
        .reference_scale(0.05)
        .build()?;
    let method2 = LitmusPricing::new(DiscountModel::fit(&shared_tables)?);

    println!("running the 160-functions-on-16-cores experiment…\n");
    let config = HarnessConfig::new(spec).env(env).mix_scale(scale);
    let experiment = PricingExperiment::new(config).reps(3).test_scale(scale);
    let r1 = experiment.run(&method1, &dedicated, &tests)?;
    let r2 = experiment.run(&method2, &shared_tables, &tests)?;

    println!(
        "{:12} {:>10} {:>10} {:>10}",
        "function", "method-1", "method-2", "ideal"
    );
    for (i1, i2) in r1.invoices().iter().zip(r2.invoices()) {
        println!(
            "{:12} {:>10.4} {:>10.4} {:>10.4}",
            i1.function,
            i1.litmus_normalized(),
            i2.litmus_normalized(),
            i2.ideal_normalized()
        );
    }
    println!(
        "\nmethod 1: discount {:.1}% (gap to ideal {:.2}%)",
        r1.mean_litmus_discount() * 100.0,
        r1.discount_gap() * 100.0
    );
    println!(
        "method 2: discount {:.1}% (gap to ideal {:.2}%)  ← the paper's winner",
        r2.mean_litmus_discount() * 100.0,
        r2.discount_gap() * 100.0
    );
    Ok(())
}
