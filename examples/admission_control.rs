//! Congestion-aware admission control (the paper's §5.1 scheduling use
//! of Litmus tests): before launching a tenant function, probe the
//! machine; if the congestion level exceeds the threshold, defer the
//! launch instead of degrading everyone.
//!
//! Run with: `cargo run --release --example admission_control`

use litmus::prelude::*;
use litmus::workloads::Language;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    println!("building tables + monitor…");
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22, 30])
        .reference_scale(0.08)
        .build()?;
    let model = DiscountModel::fit(&tables)?;
    let monitor = CongestionMonitor::new(&tables, model, Language::Python)?;
    // Admit while the machine looks like ≤18 generator threads' worth
    // of congestion.
    let mut controller = AdmissionController::new(monitor, 18.0);

    let workload = suite::by_name("thum-py").unwrap().profile().scaled(0.15)?;
    println!(
        "\n{:>12} {:>12} {:>10} {:>12}",
        "co-runners", "probe level", "decision", "wall (ms)"
    );
    for co_runners in [2usize, 8, 14, 20, 26] {
        let config = HarnessConfig::new(spec.clone())
            .env(CoRunEnv::OnePerCore { co_runners })
            .mix_scale(0.15);
        let mut machine = CoRunHarness::start(config)?;
        let decision = controller.try_admit(&mut machine, workload.clone())?;
        match decision {
            AdmissionDecision::Admitted { level, report } => println!(
                "{co_runners:>12} {level:>12.2} {:>10} {:>12.1}",
                "admit",
                report.wall_ms()
            ),
            AdmissionDecision::Deferred { level } => {
                println!("{co_runners:>12} {level:>12.2} {:>10} {:>12}", "defer", "—")
            }
        }
    }
    println!(
        "\nadmitted {} / deferred {} — the Litmus probe doubles as the\n\
         scheduler's load signal at zero extra cost (paper §5.1)",
        controller.admitted(),
        controller.deferred()
    );
    Ok(())
}
