//! Replay inspection: replay the bundled Azure Functions fixture with
//! every telemetry producer on — stealing, predictive autoscaling,
//! wall-clock stage profiling — then dump the deterministic JSONL
//! timeline, the compact human summary and the flight-recorder tail.
//!
//! The example doubles as an executable determinism check: the JSONL
//! export must be byte-identical between 1 and 4 worker-pool threads
//! and between streaming and materialized replay, even with profiling
//! enabled (profiling is wall-clock and lives outside the
//! deterministic surface).
//!
//! Run with: `cargo run --release --example replay_inspect`
//! The timeline lands in `target/replay_inspect.timeline.jsonl`.

use litmus::prelude::*;
use litmus::trace::fixture;

const MACHINES: usize = 6;
const CORES_PER_MACHINE: usize = 8;
/// One trace minute compressed to 600 ms, as in `azure_replay`.
const MINUTE_MS: u64 = 600;
const SEED: u64 = 2024;

fn expand_config() -> ExpandConfig {
    ExpandConfig::new(SEED)
        .minute_ms(MINUTE_MS)
        .placement(IntraMinute::Poisson)
}

fn cluster_config(threads: usize) -> ClusterConfig {
    let machines: Vec<_> = (0..MACHINES)
        .map(|i| {
            let background = if i < MACHINES / 2 { 20 } else { 0 };
            MachineConfig::new(CORES_PER_MACHINE)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(80)
                .max_inflight(4)
                .seed(0xA27E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), MACHINES, CORES_PER_MACHINE)
        .machines(machines)
        .serving_scale(0.05)
        .slice_ms(20)
        .threads(threads)
}

/// Stealing + predictive autoscaling + profiling: every timeline
/// producer in one replay.
fn driver() -> ClusterDriver<LitmusAware> {
    ClusterDriver::new(LitmusAware::new())
        .stealing(StealingConfig::default().backlog_threshold(3))
        .autoscale(
            AutoscalerConfig::new(
                MachineConfig::new(CORES_PER_MACHINE)
                    .background_scale(0.05)
                    .warmup_ms(80)
                    .max_inflight(4)
                    .seed(0xB007),
            )
            .high_water(1.8)
            .low_water(1.05)
            .machine_bounds(MACHINES, 12)
            .cooldown_ms(200)
            .predictive(PredictiveConfig::new(
                ForecasterSpec::Ewma { alpha: 0.35 },
                120.0,
            )),
        )
        .profiling(true)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = fixture::dataset();
    println!(
        "Azure Functions fixture: {} functions / {} apps / {} minutes, {} invocations",
        dataset.functions().len(),
        dataset.apps().len(),
        dataset.minutes(),
        dataset.total_invocations(),
    );

    println!("building calibration tables…");
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()?;
    let model = DiscountModel::fit(&tables)?;
    let config = expand_config();
    let trace = dataset.expand(config)?;

    println!(
        "replaying {} invocations with stealing + predictive autoscale + profiling…",
        trace.len()
    );
    let mut cluster = Cluster::build(cluster_config(4), tables.clone(), model.clone())?;
    let report = driver().replay(&mut cluster, &trace)?;

    // ── determinism checks ────────────────────────────────────────────
    let jsonl = report.timeline_jsonl();

    let mut single_cluster = Cluster::build(cluster_config(1), tables.clone(), model.clone())?;
    let single = driver().replay(&mut single_cluster, &trace)?;
    assert_eq!(
        jsonl,
        single.timeline_jsonl(),
        "timeline JSONL must be byte-identical across thread counts"
    );
    assert_eq!(single, report, "reports must be equal across thread counts");
    println!("  byte-identical timeline across 1 vs 4 worker threads ✓");

    let mut streamed_cluster = Cluster::build(cluster_config(4), tables, model)?;
    let streamed = driver().replay_source(&mut streamed_cluster, dataset.source(config)?)?;
    assert_eq!(
        jsonl,
        streamed.timeline_jsonl(),
        "timeline JSONL must be byte-identical between streaming and materialized replay"
    );
    assert_eq!(streamed, report, "streaming report must equal materialized");
    println!("  byte-identical timeline for streaming vs materialized replay ✓");

    // ── artifacts ─────────────────────────────────────────────────────
    let out_path = std::path::Path::new("target").join("replay_inspect.timeline.jsonl");
    std::fs::create_dir_all("target")?;
    std::fs::write(&out_path, &jsonl)?;
    println!(
        "\ntimeline: {} events, {} JSONL lines → {}",
        report.timeline().len(),
        jsonl.lines().count(),
        out_path.display()
    );

    println!("\n── telemetry summary ───────────────────────────────────");
    print!("{}", report.telemetry().summary());

    let recorder = report.telemetry().recorder();
    println!(
        "\n── flight recorder (last {} of {} events, {} evicted) ──",
        recorder.len().min(10),
        recorder.seen(),
        recorder.dropped()
    );
    let tail: Vec<_> = recorder.dump().collect();
    for event in tail.iter().rev().take(10).rev() {
        println!("  {}", event.to_json());
    }

    println!("\n── replay outcome ──────────────────────────────────────");
    println!(
        "  completed {}/{} ({} unfinished), peak fleet {} machines, \
         {} steals, {} scale events, {} forecast samples",
        report.completed,
        trace.len(),
        report.unfinished,
        report.peak_machines,
        report.steal_events().len(),
        report.scale_events().len(),
        report.forecast_samples().len(),
    );
    assert_eq!(report.completed, trace.len(), "drain window must suffice");
    Ok(())
}
