//! Azure-trace replay: serve a real-shape workload — the bundled
//! Azure Functions 2019 mini-fixture — across a cluster under every
//! placement policy, streaming the trace instead of materializing it.
//!
//! The pipeline is the `litmus-trace` subsystem end to end: parse the
//! fixture CSVs, characterize the workload's shape (burstiness, tenant
//! skew, concurrency envelopes), expand the minute-bucket counts into
//! per-invocation events with apps mapped to billing tenants and
//! functions mapped to Table-1 workload pools by duration/memory
//! character, then replay through `litmus-cluster` under round-robin,
//! least-loaded and litmus-aware routing. A final run streams the
//! expander straight into the driver — no trace is ever materialized —
//! and must produce the bit-identical report.
//!
//! Run with: `cargo run --release --example azure_replay`

use litmus::prelude::*;
use litmus::trace::fixture;

const MACHINES: usize = 8;
const CORES_PER_MACHINE: usize = 8;
/// One trace minute compressed to 600 ms: the 15-minute fixture
/// replays in 9 simulated seconds.
const MINUTE_MS: u64 = 600;
const SEED: u64 = 2024;

fn expand_config() -> ExpandConfig {
    ExpandConfig::new(SEED)
        .minute_ms(MINUTE_MS)
        .placement(IntraMinute::Poisson)
}

/// Half the machines carry background fillers, so placement quality is
/// visible on the real-shape trace too.
fn cluster_config() -> ClusterConfig {
    let machines: Vec<_> = (0..MACHINES)
        .map(|i| {
            let background = if i < MACHINES / 2 { 20 } else { 0 };
            MachineConfig::new(CORES_PER_MACHINE)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(80)
                .seed(0xA27E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), MACHINES, CORES_PER_MACHINE)
        .machines(machines)
        .serving_scale(0.05)
        .slice_ms(20)
}

fn run_policy<P: PlacementPolicy>(
    policy: P,
    tables: &PricingTables,
    model: &DiscountModel,
    trace: &InvocationTrace,
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    let mut cluster = Cluster::build(cluster_config(), tables.clone(), model.clone())?;
    let started = std::time::Instant::now(); // lint:allow(wall-clock): progress timing printed for the human running the example; never feeds simulated state
    let report = ClusterDriver::new(policy).replay(&mut cluster, trace)?;
    let wall = started.elapsed();
    println!(
        "\n── {} ──────────────────────────────────────────────",
        report.policy
    );
    println!(
        "  completed {}/{} ({} unfinished), {:.0} invocations/s wall",
        report.completed,
        trace.len(),
        report.unfinished,
        report.completed as f64 / wall.as_secs_f64()
    );
    println!(
        "  mean predicted slowdown {:.4}, mean latency {:.1} ms",
        report.mean_predicted_slowdown, report.mean_latency_ms
    );
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = fixture::dataset();
    println!(
        "Azure Functions fixture: {} functions / {} apps / {} minutes, {} invocations",
        dataset.functions().len(),
        dataset.apps().len(),
        dataset.minutes(),
        dataset.total_invocations(),
    );

    let config = expand_config();
    let source = dataset.source(config)?;
    println!("\ntenant map (apps → billing tenants):");
    for assignment in source.assignments() {
        println!(
            "  {} ← {}/{}",
            assignment.tenant, assignment.owner, assignment.app
        );
    }

    let trace = dataset.expand(config)?;
    println!("\nworkload shape (window = one compressed minute):");
    print!("{}", TraceStats::from_trace(&trace, MINUTE_MS));

    println!("\nbuilding calibration tables…");
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()?;
    let model = DiscountModel::fit(&tables)?;

    println!(
        "\nreplaying {} invocations over {:.1} s across {MACHINES} machines \
         ({} hot, {} cool)…",
        trace.len(),
        (dataset.minutes() as u64 * MINUTE_MS) as f64 / 1000.0,
        MACHINES / 2,
        MACHINES - MACHINES / 2,
    );

    let rr = run_policy(RoundRobin::new(), &tables, &model, &trace)?;
    let ll = run_policy(LeastLoaded::new(), &tables, &model, &trace)?;
    let la = run_policy(LitmusAware::new(), &tables, &model, &trace)?;

    // Stream the expander straight into the driver: no materialized
    // trace, bit-identical report.
    println!("\nstreaming replay (expander → driver, no materialized trace)…");
    let mut cluster = Cluster::build(cluster_config(), tables.clone(), model.clone())?;
    let streamed = ClusterDriver::new(LitmusAware::new())
        .replay_source(&mut cluster, dataset.source(config)?)?;
    assert_eq!(
        streamed, la,
        "streaming replay must be bit-identical to the materialized one"
    );
    println!("  bit-identical to the materialized litmus-aware replay ✓");

    println!("\n── summary ─────────────────────────────────────────────");
    for (label, report) in [
        ("round-robin", &rr),
        ("least-loaded", &ll),
        ("litmus-aware", &la),
    ] {
        println!(
            "  {:>12}: predicted slowdown {:.4}, latency {:>6.1} ms, \
             tenant compensation {:>12.0}",
            label,
            report.mean_predicted_slowdown,
            report.mean_latency_ms,
            report.billing.total().total_compensation(),
        );
    }
    println!("\n  per-tenant billing under litmus-aware routing:");
    for (tenant, summary) in la.billing.tenants() {
        let assignment = source
            .assignments()
            .iter()
            .find(|a| a.tenant == tenant)
            .expect("every billed tenant was assigned");
        println!(
            "    {tenant} ({}/{}): {:>5} invocations, discount {:>5.2}%",
            assignment.owner,
            assignment.app,
            summary.len(),
            summary.average_discount() * 100.0,
        );
    }

    assert_eq!(la.completed, trace.len(), "drain window must suffice");
    assert!(
        la.mean_predicted_slowdown < rr.mean_predicted_slowdown,
        "litmus-aware placement must beat round-robin on a skewed cluster"
    );
    println!(
        "\nlitmus-aware routing cut the mean presumed slowdown by {:.1}% vs \
         round-robin on the real-shape trace.",
        (1.0 - la.mean_predicted_slowdown / rr.mean_predicted_slowdown) * 100.0,
    );
    Ok(())
}
