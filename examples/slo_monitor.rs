//! SLO monitoring end to end: plant an overload a small fleet cannot
//! absorb, replay it with full span tracing and the SLOs declared on
//! the driver (so the incremental engine fires alerts *during* the
//! replay), run the post-hoc burn-rate engine over the finished
//! timeline, and show the per-tenant alert firing at a deterministic
//! sim time — then clearing once the backlog drains.
//!
//! The example doubles as an executable acceptance check (CI runs it
//! in the bench-smoke job): the alert's fire/clear boundaries are
//! asserted, the online alert history must equal the post-hoc report
//! event-for-event, a retention-capped streaming replay must produce
//! the byte-identical export with O(window) peak timeline memory, and
//! both the replay JSONL and the SLO engine's own JSONL must be
//! byte-identical across 1 and 4 worker-pool threads. Both exports
//! land in `target/` where `litmus-obs` can query, diff — and `tail`
//! — them from the shell.
//!
//! Run with: `cargo run --release --example slo_monitor`

use litmus::platform::TraceEvent;
use litmus::prelude::*;
use litmus::telemetry::assert_jsonl_eq;
use litmus::workloads::suite::TenantClass;

const SLICE_MS: u64 = 20;
const BURST_START_MS: u64 = 1_000;
const BURST_END_MS: u64 = 1_300;

fn config(threads: usize) -> ClusterConfig {
    let machines: Vec<_> = (0..2)
        .map(|i| {
            MachineConfig::new(4)
                .warmup_ms(60)
                .max_inflight(2)
                .seed(0x0B5E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 2, 4)
        .machines(machines)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(SLICE_MS)
}

/// Tenant 0 trickles one interactive invocation every 50 ms; tenant 1
/// lands 150 analytics arrivals in a 300 ms window — far beyond what
/// two 4-core machines can launch promptly.
fn overload_trace() -> InvocationTrace {
    let interactive = suite::tenant_pool(TenantClass::Interactive);
    let analytics = suite::tenant_pool(TenantClass::Analytics);
    let mut events = Vec::new();
    for i in 0..80u64 {
        events.push(TraceEvent {
            at_ms: i * 50,
            function: interactive[i as usize % interactive.len()].clone(),
            tenant: TenantId(0),
        });
    }
    for i in 0..150u64 {
        events.push(TraceEvent {
            at_ms: BURST_START_MS + i * 2,
            function: analytics[i as usize % analytics.len()].clone(),
            tenant: TenantId(1),
        });
    }
    InvocationTrace::from_events(events)
}

/// One tight per-tenant objective: 90% of tenant 1's invocations must
/// launch within 50 ms, paged on a 200 ms/600 ms burn-rate window
/// pair at 2× the sustainable rate. The same spec is handed to the
/// driver (online engine) and to the post-hoc engine.
fn specs() -> Vec<SloSpec> {
    vec![SloSpec::queue_wait("analytics-wait", 50)
        .tenant(1)
        .objective(0.9)
        .rules(vec![BurnRateRule::new("page", 200, 600, 2.0)])]
}

fn engine() -> SloEngine {
    specs().into_iter().fold(SloEngine::new(), SloEngine::spec)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec)
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()?;
    let model = DiscountModel::fit(&tables)?;
    let trace = overload_trace();

    println!(
        "replaying {} invocations (tenant-1 burst of 150 at {BURST_START_MS}–{BURST_END_MS} ms) \
         on 2×4-core machines with full span tracing…",
        trace.len()
    );
    let replay = |threads: usize| -> Result<ClusterReport, Box<dyn std::error::Error>> {
        let mut cluster = Cluster::build(config(threads), tables.clone(), model.clone())?;
        Ok(ClusterDriver::new(RoundRobin::new())
            .telemetry(TelemetryConfig::default().trace_sampling(0x51_0A, 1.0))
            .slos(specs())
            .replay(&mut cluster, &trace)?)
    };
    let report = replay(4)?;
    let slo = engine().evaluate(report.timeline(), SLICE_MS);

    println!("\n── SLO engine verdict ──────────────────────────────────");
    print!("{}", slo.summary());

    // ── acceptance: the overload fires exactly one per-tenant page and
    // it clears after recovery, at deterministic boundaries.
    assert_eq!(slo.alerts.len(), 1, "the burst must fire exactly one alert");
    let alert = &slo.alerts[0];
    assert_eq!(alert.slo, "analytics-wait");
    assert_eq!(alert.tenant, Some(1), "the alert must be tenant-scoped");
    assert!(
        (BURST_START_MS..BURST_END_MS + 1_000).contains(&alert.fired_ms),
        "alert fired at {} ms, outside the burst window",
        alert.fired_ms
    );
    let cleared = alert.cleared_ms.expect("alert must clear after recovery");
    assert!(cleared > alert.fired_ms && cleared < slo.horizon_ms);
    println!(
        "  planted overload paged tenant 1 at {} ms and cleared at {cleared} ms ✓",
        alert.fired_ms
    );

    // ── online == post-hoc: the incremental engine the driver co-ran at
    // every slice boundary saw the exact alert history the post-hoc
    // evaluation reconstructs from the finished timeline.
    assert_eq!(
        report.slo_alerts(),
        slo.alerts.as_slice(),
        "online alert history must equal the post-hoc report"
    );
    println!("  online alert history equals the post-hoc report event-for-event ✓");

    // ── streaming: a retention-capped replay streams byte-identical
    // JSONL while holding only O(window) timeline events in memory.
    const KEEP: usize = 64;
    let streamed = {
        let mut cluster = Cluster::build(config(4), tables.clone(), model.clone())?;
        ClusterDriver::new(RoundRobin::new())
            .telemetry(
                TelemetryConfig::default()
                    .trace_sampling(0x51_0A, 1.0)
                    .timeline_retention(KEEP),
            )
            .slos(specs())
            .replay(&mut cluster, &trace)?
    };
    assert_jsonl_eq(
        "materialized",
        &report.timeline_jsonl(),
        "streamed",
        streamed
            .streamed_jsonl()
            .expect("retention-capped replays carry a streamed export"),
    );
    assert!(
        streamed.timeline_peak_retained() <= KEEP + 1,
        "peak retained {} exceeds the {KEEP}-event window",
        streamed.timeline_peak_retained()
    );
    assert_eq!(streamed.slo_alerts(), slo.alerts.as_slice());
    println!(
        "  streamed export byte-identical under a {KEEP}-event window (peak retained {}) ✓",
        streamed.timeline_peak_retained()
    );

    // ── determinism: replay and SLO JSONL byte-identical across
    // worker-pool thread counts.
    let single = replay(1)?;
    assert_jsonl_eq(
        "threads=1",
        &single.timeline_jsonl(),
        "threads=4",
        &report.timeline_jsonl(),
    );
    let slo_single = engine().evaluate(single.timeline(), SLICE_MS);
    assert_jsonl_eq(
        "threads=1",
        &slo_single.to_jsonl(),
        "threads=4",
        &slo.to_jsonl(),
    );
    assert_eq!(slo_single.alerts, slo.alerts);
    println!("  byte-identical replay + alert JSONL across 1 vs 4 threads ✓");

    // ── artifacts for `litmus-obs` ────────────────────────────────────
    std::fs::create_dir_all("target")?;
    let replay_path = std::path::Path::new("target").join("slo_monitor.replay.jsonl");
    let slo_path = std::path::Path::new("target").join("slo_monitor.slo.jsonl");
    std::fs::write(&replay_path, report.timeline_jsonl())?;
    std::fs::write(&slo_path, slo.to_jsonl())?;
    println!(
        "\nexports: {} and {} (try `litmus-obs summary` / `spans --tenant 1` / `diff` / `tail`)",
        replay_path.display(),
        slo_path.display()
    );
    Ok(())
}
