//! Trace-driven autoscale study: replay compressed full-day Azure
//! shapes through the cluster's autoscaler — reactive water-mark sweep
//! *and* forecast-driven predictive configs — and print both cost/SLO
//! frontiers: machine-hours bought vs the p99 predicted slowdown
//! served.
//!
//! The reactive scaler only reacts: a machine boots *after* the
//! fleetwide congestion signal crosses the mark, so aggressive marks
//! buy capacity early (more machine-hours, flatter tail) and lazy
//! marks ride the burst out (cheaper, worse p99). The predictive
//! scaler (`ScalingPolicy::Predictive`) feeds each slice's admitted
//! arrivals into an online forecaster and orders on the upper band of
//! the horizon forecast — capacity is serving *when* the burst lands,
//! with a reactive mark kept as backstop for the forecaster's
//! learning phase and for misses. Both policies pay the same machine
//! **boot lead** (half a trace minute ≈ 30 real seconds), which is
//! what makes the comparison physical: with instant boots, reacting
//! late costs nothing and no forecast can beat a water mark. The
//! study's verdict is the ROADMAP target: a predictive config must
//! land at or left of the reactive frontier (≤ some reactive mark's
//! machine-hours at ≤ its p99), and the closer it gets to "the
//! aggressive mark's p99 at the lazy mark's machine-hours" the
//! better. The dominance assertion at the bottom keeps that win
//! regression-tested.
//!
//! By default two copies of the bundled fixture day are chained into
//! one continuous multi-day replay through `multi_day_source` — the
//! week-scale streaming path — so the scaler sees the daily shape
//! twice, including the overnight trough where it retires machines.
//! Point `AZURE_TRACE_DIR` at a real downloaded day
//! (`scripts/download_azure_trace.sh`) to study production shapes:
//! the day is ingested lossily (impute-from-app/trigger medians) and
//! its drop/impute accounting printed.
//!
//! Run with: `cargo run --release --example autoscale_study`
//! (`-- --smoke` for the CI-sized sweep, which still exercises both
//! the reactive and predictive paths). Pass `--json` to also emit the
//! whole frontier — every point's cost/SLO numbers plus per-config
//! forecast MAE — as a single machine-readable JSON line at the end of
//! stdout. Set `LITMUS_SVG_OUT=<dir>` to additionally render three
//! SVG charts there with the zero-dependency `litmus::observe::svg`
//! renderer: `frontier.svg` (both cost/SLO frontiers),
//! `burn_rate.svg` (per-tenant SLO burn-rate timelines with alert
//! bands, from a traced re-run of the most aggressive reactive mark),
//! and `backtest.svg` (each predictive config's horizon-shifted
//! forecast band laid under the arrivals that actually landed).
//!
//! In smoke mode on the bundled fixture the JSON document is
//! additionally asserted against the committed snapshot
//! `tests/snapshots/autoscale_study_smoke.json`, so the study's
//! numbers are regression-pinned in CI; set `UPDATE_SNAPSHOTS=1` to
//! rewrite the snapshot after an intentional change.

use litmus::prelude::*;
use litmus::telemetry::json::{array, JsonObject};
use litmus::trace::{fixture, multi_day_source, IngestMode, LossyIngest};

const CORES_PER_MACHINE: usize = 8;
const SEED: u64 = 41;
/// Scheduling slice width — the forecaster's observation interval, so
/// horizons and seasonal periods below are all derived from this one
/// constant.
const SLICE_MS: u64 = 20;

struct FrontierPoint {
    label: String,
    report: ClusterReport,
    events: usize,
}

impl FrontierPoint {
    fn p99(&self) -> f64 {
        self.report.predicted_slowdown_quantile(0.99)
    }
}

fn calibration() -> Result<(PricingTables, DiscountModel), Box<dyn std::error::Error>> {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()?;
    let model = DiscountModel::fit(&tables)?;
    Ok((tables, model))
}

/// A fleet that starts at the autoscaler's floor: capacity is the
/// scaler's call, not the initial layout's.
fn cluster_config(floor: usize) -> ClusterConfig {
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), floor, CORES_PER_MACHINE)
        .serving_scale(0.05)
        .slice_ms(SLICE_MS)
}

/// The boot lead both policies pay, sim ms: half a trace minute (≈ 30
/// real seconds of VM boot at trace scale). This is what makes the
/// study interesting — with instant boots, reacting late costs
/// nothing and no forecast can beat a water mark.
fn boot_lead_ms(minute_ms: u64) -> u64 {
    minute_ms / 2
}

fn reactive(high_water: f64, minute_ms: u64, floor: usize, ceiling: usize) -> AutoscalerConfig {
    AutoscalerConfig::new(MachineConfig::new(CORES_PER_MACHINE).seed(0x5CA1E))
        .high_water(high_water)
        .low_water(1.1)
        .machine_bounds(floor, ceiling)
        .cooldown_ms(250)
        .boot_lead_ms(boot_lead_ms(minute_ms))
}

/// A predictive scaler: forecast-led boots over a mid-frontier
/// reactive backstop — the backstop carries the forecaster's learning
/// phase (day one of a day-cycle model), the forecast takes over once
/// it has seen the shape.
fn predictive(
    spec: ForecasterSpec,
    backstop: f64,
    machine_rate_per_s: f64,
    minute_ms: u64,
    floor: usize,
    ceiling: usize,
) -> AutoscalerConfig {
    // The forecast lead covers the boot lead exactly: machines are
    // ordered one boot ahead, so forecast capacity arrives *with* the
    // burst, while water-mark capacity arrives one lead after it. A
    // drain mark of 1.35 (vs the reactive sweep's 1.1) lets the fleet
    // fall back to the floor between bursts: scale-downs stay
    // probe-gated *and* forecast-gated, so capacity the forecast still
    // wants is never drained. The shorter cooldown is safe here —
    // forecast boots don't wait on the new machine's probes to settle
    // the way water-mark boots must.
    let horizon_slices = (boot_lead_ms(minute_ms) / SLICE_MS).max(1) as usize;
    reactive(backstop, minute_ms, floor, ceiling)
        .low_water(1.35)
        .cooldown_ms(100)
        .predictive(
            PredictiveConfig::new(spec, machine_rate_per_s)
                .horizon_slices(horizon_slices)
                .headroom(1.0)
                .band_quantile(0.85)
                .warmup_slices(30),
        )
}

/// Post-hoc forecast accuracy over a replay's samples: MAE of the
/// h-slice-ahead point forecast against the admitted count that
/// landed h slices later.
fn forecast_mae(samples: &[ForecastSample]) -> f64 {
    let Some(first) = samples.first() else {
        return 0.0;
    };
    let horizon = first.forecast.horizon;
    let scored: Vec<f64> = samples
        .windows(horizon + 1)
        .map(|w| (w[horizon].observed - w[0].forecast.point).abs())
        .collect();
    if scored.is_empty() {
        return 0.0;
    }
    scored.iter().sum::<f64>() / scored.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let emit_json = std::env::args().any(|arg| arg == "--json");
    // One trace minute compressed to this many simulated ms; the cost
    // column converts machine time back to trace scale.
    let minute_ms: u64 = if smoke { 300 } else { 600 };
    let marks: &[f64] = if smoke {
        &[1.5, 2.2, 2.5, 4.0]
    } else {
        &[1.4, 1.8, 2.0, 2.2, 2.5, 3.5, 5.0]
    };
    let (floor, ceiling) = (2, 12);
    // The seasonal period: one trace minute in scheduling slices — the
    // fixture's bursty apps fire on minute cycles.
    let minute_slices = (minute_ms / SLICE_MS) as usize;

    // The day (or days) under study.
    let days: Vec<AzureDataset> = match std::env::var_os("AZURE_TRACE_DIR") {
        Some(dir) => {
            let (day, ingest) =
                AzureDataset::from_dir_with(&dir, IngestMode::Lossy(LossyIngest::ImputeMedians))?;
            println!("loaded real trace day from {}:", dir.to_string_lossy());
            println!("{ingest}");
            vec![day]
        }
        None => {
            let day = fixture::dataset();
            println!(
                "no AZURE_TRACE_DIR set — chaining two copies of the bundled \
                 fixture day ({} functions, {} minutes each)",
                day.functions().len(),
                day.minutes(),
            );
            vec![day.clone(), day]
        }
    };
    let config = ExpandConfig::new(SEED).minute_ms(minute_ms);
    let trace_minutes: usize = days.iter().map(AzureDataset::minutes).sum();
    let events = multi_day_source(&days, config)?.size_hint().0;
    println!(
        "replaying {events} invocations over {trace_minutes} trace minutes \
         (compressed to {:.1} s), fleet {floor}–{ceiling} machines\n",
        (trace_minutes as u64 * minute_ms) as f64 / 1000.0,
    );
    // The per-machine service-rate estimate the forecast converts
    // rate to machines through. The reactive sweep shows the floor
    // fleet of 2 absorbs the whole mean rate at a ~1.12 p99, so one
    // machine's comfortable share is about mean/2.5 — tighter than
    // that and the forecast buys peak-provisioning, looser and it
    // never boots.
    let mean_rate_per_s = events as f64 * 1000.0 / (trace_minutes as u64 * minute_ms) as f64;
    let machine_rate = mean_rate_per_s / 2.5;

    let (tables, model) = calibration()?;
    let mut reactive_frontier: Vec<FrontierPoint> = Vec::new();
    let mut predictive_frontier: Vec<FrontierPoint> = Vec::new();

    // Static baseline: the peak-provisioned fleet a reactive scaler is
    // supposed to undercut. Its replay streams through the platform's
    // arrival-count tap, which characterizes the demand the forecast
    // has to track — and grounds the service-rate estimate above.
    {
        let mut cluster = Cluster::build(cluster_config(8), tables.clone(), model.clone())?;
        let mut tap = CountingSource::new(multi_day_source(&days, config)?, minute_ms);
        let report =
            ClusterDriver::new(LitmusAware::new()).replay_source(&mut cluster, &mut tap)?;
        let per_minute = tap.bucket_counts();
        let peak_minute = per_minute.iter().copied().max().unwrap_or(0);
        println!(
            "arrival tap: {} trace minutes, mean {:.0} / peak {} arrivals per \
             minute (peak/mean {:.2}×)\n",
            per_minute.len(),
            mean_rate_per_s * 60.0 * minute_ms as f64 / 60_000.0,
            peak_minute,
            peak_minute as f64 * per_minute.len() as f64 / tap.total().max(1) as f64,
        );
        reactive_frontier.push(FrontierPoint {
            label: "static-8".into(),
            report,
            events,
        });
    }
    for &mark in marks {
        let mut cluster = Cluster::build(cluster_config(floor), tables.clone(), model.clone())?;
        let report = ClusterDriver::new(LitmusAware::new())
            .autoscale(reactive(mark, minute_ms, floor, ceiling))
            .replay_source(&mut cluster, multi_day_source(&days, config)?)?;
        reactive_frontier.push(FrontierPoint {
            label: format!("high={mark:.1}"),
            report,
            events,
        });
    }

    // The predictive sweep: the seasonal model keyed to the minute
    // cycle against the trend and level baselines, at a few service
    // rates (tighter rate = more capacity bought per forecast unit).
    let seasonal = ForecasterSpec::SeasonalHoltWinters {
        alpha: 0.25,
        beta: 0.05,
        gamma: 0.35,
        period: minute_slices.max(2),
    };
    // Day-cycle seasonality: one slot per slice of the day, so the
    // second chained day is forecast from the first's learned shape.
    let day_slices = minute_slices * days[0].minutes();
    let daily = ForecasterSpec::SeasonalHoltWinters {
        alpha: 0.2,
        beta: 0.02,
        gamma: 0.5,
        period: day_slices.max(2),
    };
    // Each predictive point: (label, forecaster, reactive backstop
    // mark, per-machine rate).
    let predictive_sweep: Vec<(String, ForecasterSpec, f64, f64)> = if smoke {
        let loose = machine_rate * 1.25;
        vec![
            (
                format!("day/r{:.0}", machine_rate * 0.9),
                daily,
                2.5,
                machine_rate * 0.9,
            ),
            (
                format!("ewma/r{loose:.0}"),
                ForecasterSpec::Ewma { alpha: 0.3 },
                2.5,
                loose,
            ),
        ]
    } else {
        let loose = machine_rate * 1.25;
        let cheap = machine_rate * 1.67;
        vec![
            (
                format!("day18/r{machine_rate:.0}"),
                daily,
                1.8,
                machine_rate,
            ),
            (format!("day25/r{loose:.0}"), daily, 2.5, loose),
            (
                format!("day25/r{:.0}", machine_rate * 1.5),
                daily,
                2.5,
                machine_rate * 1.5,
            ),
            (format!("day25/r{cheap:.0}"), daily, 2.5, cheap),
            (format!("shw25/r{loose:.0}"), seasonal, 2.5, loose),
            (
                format!("holt25/r{loose:.0}"),
                ForecasterSpec::HoltLinear {
                    alpha: 0.3,
                    beta: 0.1,
                },
                2.5,
                loose,
            ),
            (
                format!("ewma25/r{loose:.0}"),
                ForecasterSpec::Ewma { alpha: 0.3 },
                2.5,
                loose,
            ),
        ]
    };
    for (label, spec, backstop, rate) in predictive_sweep {
        let mut cluster = Cluster::build(cluster_config(floor), tables.clone(), model.clone())?;
        let report = ClusterDriver::new(LitmusAware::new())
            .autoscale(predictive(spec, backstop, rate, minute_ms, floor, ceiling))
            .replay_source(&mut cluster, multi_day_source(&days, config)?)?;
        predictive_frontier.push(FrontierPoint {
            label,
            report,
            events,
        });
    }

    // Machine time at trace scale: sim machine-ms × (real minute /
    // compressed minute), in hours.
    let trace_hours =
        |report: &ClusterReport| report.machine_ms() as f64 * (60_000.0 / minute_ms as f64) / 3.6e6;

    let print_frontier = |title: &str, points: &[FrontierPoint]| {
        println!("── {title} ─────────────────────────");
        println!(
            "{:>10}  {:>4}  {:>9}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}  {:>9}",
            "config",
            "peak",
            "mach-s",
            "mach-h*",
            "p50 slow",
            "p99 slow",
            "lat ms",
            "ups f/hw",
            "completed",
        );
        for point in points {
            let report = &point.report;
            let ups_forecast = report
                .scale_events()
                .iter()
                .filter(|e| e.kind == ScaleKind::Up && e.reason == ScaleReason::Forecast)
                .count();
            let ups_water = report
                .scale_events()
                .iter()
                .filter(|e| e.kind == ScaleKind::Up && e.reason == ScaleReason::HighWater)
                .count();
            // One sort per report: both quantiles from the batch API.
            let quantiles = report.predicted_slowdown_quantiles(&[0.5, 0.99]);
            println!(
                "{:>10}  {:>4}  {:>9.1}  {:>9.2}  {:>8.4}  {:>8.4}  {:>8.1}  {:>3}/{:<4}  {:>5}/{:<5}",
                point.label,
                report.peak_machines,
                report.machine_ms() as f64 / 1000.0,
                trace_hours(report),
                quantiles[0],
                quantiles[1],
                report.mean_latency_ms,
                ups_forecast,
                ups_water,
                report.completed,
                point.events,
            );
        }
    };
    print_frontier(
        "cost/SLO frontier (reactive water-mark sweep)",
        &reactive_frontier,
    );
    println!();
    print_frontier(
        "cost/SLO frontier (predictive configs, reactive backstop)",
        &predictive_frontier,
    );
    println!("(* machine-hours at trace scale: sim machine-time × 60 000/{minute_ms} ms minutes)");
    for point in &predictive_frontier {
        println!(
            "  {}: forecast mae {:.2} arrivals/slice over {} samples",
            point.label,
            forecast_mae(point.report.forecast_samples()),
            point.report.forecast_samples().len(),
        );
    }

    // ── Sanity: nothing leaked, every dispatch sampled, predictive
    // replays actually forecast.
    for point in reactive_frontier.iter().chain(&predictive_frontier) {
        assert_eq!(
            point.report.completed + point.report.unfinished,
            point.events,
            "{}: invocations leaked",
            point.label
        );
        assert_eq!(
            point.report.predicted_slowdowns().len(),
            point.events,
            "{}: one slowdown sample per dispatch",
            point.label
        );
    }
    for point in &predictive_frontier {
        assert!(
            !point.report.forecast_samples().is_empty(),
            "{}: predictive replay recorded no forecasts",
            point.label
        );
    }

    // ── The reactive frontier's defining trade: the most aggressive
    // mark may not serve a worse p99 than the laziest, and the laziest
    // may not buy more capacity than the most aggressive.
    let aggressive = &reactive_frontier[1];
    let lazy = &reactive_frontier[reactive_frontier.len() - 1];
    assert!(
        aggressive.p99() <= lazy.p99() + 1e-9,
        "aggressive scaling must not worsen the p99 tail"
    );
    assert!(
        lazy.report.machine_ms() <= aggressive.report.machine_ms(),
        "lazy scaling must not cost more machine-time"
    );

    // ── The predictive verdict: at least one predictive config must
    // dominate a reactive mark — no more machine-hours AND no worse
    // p99 — deterministically at this seed. (The static baseline is
    // not a mark; dominance is against the sweep.)
    let mut dominations = Vec::new();
    for p in &predictive_frontier {
        for r in &reactive_frontier[1..] {
            if p.report.machine_ms() <= r.report.machine_ms() && p.p99() <= r.p99() + 1e-9 {
                dominations.push((p, r));
            }
        }
    }
    println!();
    if std::env::var_os("AUTOSCALE_DEBUG").is_some() {
        for point in reactive_frontier.iter().chain(&predictive_frontier) {
            println!(
                "  debug {:>10}: machine_ms {:>7} p99 {:.9}",
                point.label,
                point.report.machine_ms(),
                point.p99(),
            );
        }
    }
    for (p, r) in &dominations {
        println!(
            "predictive {} dominates reactive {}: {:.2} ≤ {:.2} mach-h at p99 \
             {:.3} ≤ {:.3}",
            p.label,
            r.label,
            trace_hours(&p.report),
            trace_hours(&r.report),
            p.p99(),
            r.p99(),
        );
    }
    assert!(
        !dominations.is_empty(),
        "no predictive config dominated any reactive mark — the forecast \
         bought nothing"
    );
    let best = predictive_frontier
        .iter()
        .min_by(|a, b| {
            (a.report.machine_ms() as f64 * a.p99())
                .total_cmp(&(b.report.machine_ms() as f64 * b.p99()))
        })
        .expect("predictive sweep is non-empty");
    println!(
        "\nreactive frontier spans {:.2}→{:.2} trace machine-hours for p99 \
         {:.3}→{:.3}; target is the aggressive p99 at the lazy cost — best \
         predictive ({}) lands at {:.2} mach-h, p99 {:.3}.",
        trace_hours(&aggressive.report),
        trace_hours(&lazy.report),
        aggressive.p99(),
        lazy.p99(),
        best.label,
        trace_hours(&best.report),
        best.p99(),
    );

    // ── Machine-readable artifact: the full frontier as one JSON line,
    // with per-config forecast accuracy. Every value is sim-derived and
    // deterministic, which is what makes the smoke snapshot below
    // byte-stable.
    let point_json = |point: &FrontierPoint, predictive: bool| {
        let report = &point.report;
        let quantiles = report.predicted_slowdown_quantiles(&[0.5, 0.99]);
        let ups = |reason: ScaleReason| {
            report
                .scale_events()
                .iter()
                .filter(|e| e.kind == ScaleKind::Up && e.reason == reason)
                .count() as u64
        };
        let mut obj = JsonObject::new();
        obj.str_field("config", &point.label);
        obj.u64_field("peak_machines", report.peak_machines as u64);
        obj.u64_field("machine_ms", report.machine_ms());
        obj.f64_field("trace_machine_hours", trace_hours(report));
        obj.f64_field("p50_slowdown", quantiles[0]);
        obj.f64_field("p99_slowdown", quantiles[1]);
        obj.f64_field("mean_latency_ms", report.mean_latency_ms);
        obj.u64_field("ups_forecast", ups(ScaleReason::Forecast));
        obj.u64_field("ups_high_water", ups(ScaleReason::HighWater));
        obj.u64_field("completed", report.completed as u64);
        obj.u64_field("unfinished", report.unfinished as u64);
        if predictive {
            obj.f64_field("forecast_mae", forecast_mae(report.forecast_samples()));
            obj.u64_field("forecast_samples", report.forecast_samples().len() as u64);
        }
        obj.finish()
    };
    let doc = {
        let mut obj = JsonObject::new();
        obj.str_field("study", "autoscale");
        obj.str_field("mode", if smoke { "smoke" } else { "full" });
        obj.u64_field("minute_ms", minute_ms);
        obj.u64_field("trace_minutes", trace_minutes as u64);
        obj.u64_field("events", events as u64);
        obj.raw_field(
            "reactive",
            &array(reactive_frontier.iter().map(|p| point_json(p, false))),
        );
        obj.raw_field(
            "predictive",
            &array(predictive_frontier.iter().map(|p| point_json(p, true))),
        );
        obj.finish()
    };
    if emit_json {
        println!("\n{doc}");
    }

    // ── Optional SVG rendering (zero-dep, deterministic output).
    if let Some(dir) = std::env::var_os("LITMUS_SVG_OUT") {
        render_svgs(
            std::path::Path::new(&dir),
            &reactive_frontier,
            &predictive_frontier,
            minute_ms,
            &days,
            config,
            (floor, ceiling),
            &tables,
            &model,
            marks[0],
        )?;
    }

    // ── Snapshot pin: the smoke-mode fixture study must reproduce the
    // committed numbers exactly. Real-trace runs (AZURE_TRACE_DIR) are
    // machine-supplied data and exempt.
    if smoke && std::env::var_os("AZURE_TRACE_DIR").is_none() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/snapshots/autoscale_study_smoke.json");
        if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
            std::fs::create_dir_all(path.parent().expect("snapshot path has a parent"))?;
            std::fs::write(&path, format!("{doc}\n"))?;
            println!("\nsnapshot updated: {}", path.display());
        } else {
            let committed = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "missing snapshot {} ({e}); run with UPDATE_SNAPSHOTS=1 to create it",
                    path.display()
                )
            })?;
            assert_eq!(
                committed.trim_end(),
                doc,
                "smoke-mode frontier JSON drifted from {} — rerun with \
                 UPDATE_SNAPSHOTS=1 if the change is intentional",
                path.display()
            );
            println!("\nsmoke frontier JSON matches committed snapshot ✓");
        }
    }
    Ok(())
}

/// Renders the study's three charts into `dir` with the
/// zero-dependency `litmus::observe::svg` renderer:
///
/// - `frontier.svg` — both cost/SLO frontiers as (trace machine-hours,
///   p99 predicted slowdown) polylines;
/// - `burn_rate.svg` — per-tenant SLO burn-rate timelines with alert
///   bands, from a traced re-run of the most aggressive reactive mark
///   (the sweep's own replays stay untraced, so the default runs and
///   the smoke snapshot are untouched by this hook);
/// - `backtest.svg` — the forecast backtest: each predictive config's
///   lo/hi band shifted to the slice it predicted, under the admitted
///   arrivals that actually landed there.
///
/// Everything written is deterministic: the re-run replay, the SLO
/// evaluation, and the renderer's fixed-precision output.
#[allow(clippy::too_many_arguments)]
fn render_svgs(
    dir: &std::path::Path,
    reactive_frontier: &[FrontierPoint],
    predictive_frontier: &[FrontierPoint],
    minute_ms: u64,
    days: &[AzureDataset],
    config: ExpandConfig,
    (floor, ceiling): (usize, usize),
    tables: &PricingTables,
    model: &DiscountModel,
    mark: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    use litmus::observe::svg::{Band, Chart, Region, Series};

    std::fs::create_dir_all(dir)?;
    let trace_hours =
        |report: &ClusterReport| report.machine_ms() as f64 * (60_000.0 / minute_ms as f64) / 3.6e6;
    let frontier_points = |points: &[FrontierPoint]| {
        let mut pts: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (trace_hours(&p.report), p.p99()))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts
    };
    let frontier = Chart::new("cost/SLO frontier: machine-hours bought vs p99 slowdown served")
        .labels("trace machine-hours", "p99 predicted slowdown")
        .series(Series::new(
            "reactive water-mark sweep",
            "#d62728",
            frontier_points(reactive_frontier),
        ))
        .series(Series::new(
            "predictive configs",
            "#1f77b4",
            frontier_points(predictive_frontier),
        ));
    let frontier_path = dir.join("frontier.svg");
    std::fs::write(&frontier_path, frontier.render())?;

    // A traced re-run of the most aggressive reactive mark: full span
    // sampling feeds the SLO engine's per-tenant burn-rate series.
    let mut cluster = Cluster::build(cluster_config(floor), tables.clone(), model.clone())?;
    let report = ClusterDriver::new(LitmusAware::new())
        .telemetry(TelemetryConfig::default().trace_sampling(SEED, 1.0))
        .autoscale(reactive(mark, minute_ms, floor, ceiling))
        .replay_source(&mut cluster, multi_day_source(days, config)?)?;

    // SLOs for the busiest tenants: launch within five slices, 90% of
    // the time — tight enough that the fixture's bursts show burn.
    let samples = litmus::observe::completions(report.timeline());
    let mut busiest = litmus::observe::rollups(&samples);
    busiest.sort_by(|a, b| {
        b.completions
            .cmp(&a.completions)
            .then(a.tenant.cmp(&b.tenant))
    });
    busiest.truncate(4);
    let mut engine = SloEngine::new();
    for roll in &busiest {
        engine = engine.spec(
            SloSpec::queue_wait(format!("tenant-{}-wait", roll.tenant), 5 * SLICE_MS)
                .tenant(roll.tenant)
                .objective(0.9)
                .rules(vec![BurnRateRule::new(
                    "page",
                    10 * SLICE_MS,
                    40 * SLICE_MS,
                    2.0,
                )]),
        );
    }
    let slo = engine.evaluate(report.timeline(), SLICE_MS);

    const PALETTE: [&str; 4] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];
    let mut burn = Chart::new(format!(
        "per-tenant SLO burn rate (reactive high={mark:.1}, {} alerts)",
        slo.alerts.len()
    ))
    .labels("sim time (ms)", "fast-window burn multiple");
    for (i, series) in slo.series.iter().enumerate() {
        burn = burn.series(Series::new(
            series.slo.clone(),
            PALETTE[i % PALETTE.len()],
            series.points.iter().map(|&(t, b)| (t as f64, b)).collect(),
        ));
    }
    let alert_spans: Vec<(f64, f64)> = slo
        .alerts
        .iter()
        .map(|a| {
            (
                a.fired_ms as f64,
                a.cleared_ms.unwrap_or(slo.horizon_ms) as f64,
            )
        })
        .collect();
    if !alert_spans.is_empty() {
        burn = burn.band(Band::new("alert firing", "#ff7f0e", alert_spans));
    }
    let burn_path = dir.join("burn_rate.svg");
    std::fs::write(&burn_path, burn.render())?;

    // Forecast backtest: every predictive config's lo/hi band, shifted
    // forward by its horizon to the slice each forecast actually
    // predicted, under the admitted arrivals that landed there. The
    // actual-arrivals series comes from the first config — admission
    // is trace-driven, so every predictive replay observes the same
    // per-slice counts.
    let mut backtest = Chart::new("forecast backtest: predicted band vs admitted arrivals")
        .labels("sim time (ms)", "arrivals per slice");
    if let Some(first) = predictive_frontier.first() {
        backtest = backtest.series(Series::new(
            "admitted arrivals",
            "#333333",
            first
                .report
                .forecast_samples()
                .iter()
                .map(|s| (s.at_ms as f64, s.observed))
                .collect(),
        ));
    }
    for (i, point) in predictive_frontier.iter().enumerate() {
        let band_points = point
            .report
            .forecast_samples()
            .iter()
            .map(|s| {
                let target_ms = s.at_ms + s.forecast.horizon as u64 * SLICE_MS;
                (target_ms as f64, s.forecast.lo, s.forecast.hi)
            })
            .collect();
        backtest = backtest.region(Region::new(
            format!("{} band", point.label),
            PALETTE[i % PALETTE.len()],
            band_points,
        ));
    }
    let backtest_path = dir.join("backtest.svg");
    std::fs::write(&backtest_path, backtest.render())?;

    println!(
        "\nSVG charts written: {}, {} and {}",
        frontier_path.display(),
        burn_path.display(),
        backtest_path.display()
    );
    Ok(())
}
