//! Trace-driven autoscale study: replay compressed full-day Azure
//! shapes through the cluster's reactive autoscaler across a sweep of
//! high-water marks and print the cost/SLO frontier — machine-hours
//! bought vs the p99 predicted slowdown served.
//!
//! The reactive scaler only reacts: a machine boots *after* the
//! fleetwide congestion signal crosses the mark, so aggressive marks
//! buy capacity early (more machine-hours, flatter tail) and lazy
//! marks ride the burst out (cheaper, worse p99). The frontier this
//! prints is the baseline a predictive scaler (ROADMAP) has to beat:
//! its promise is the aggressive mark's tail at the lazy mark's cost.
//!
//! By default two copies of the bundled fixture day are chained into
//! one continuous multi-day replay through `multi_day_source` — the
//! week-scale streaming path — so the scaler sees the daily shape
//! twice, including the overnight trough where it retires machines.
//! Point `AZURE_TRACE_DIR` at a real downloaded day
//! (`scripts/download_azure_trace.sh`) to study production shapes:
//! the day is ingested lossily (impute-from-app/trigger medians) and
//! its drop/impute accounting printed.
//!
//! Run with: `cargo run --release --example autoscale_study`
//! (`-- --smoke` for the CI-sized sweep).

use litmus::prelude::*;
use litmus::trace::{fixture, multi_day_source, IngestMode, LossyIngest};

const CORES_PER_MACHINE: usize = 8;
const SEED: u64 = 41;

struct FrontierPoint {
    label: String,
    report: ClusterReport,
    events: usize,
}

fn calibration() -> Result<(PricingTables, DiscountModel), Box<dyn std::error::Error>> {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()?;
    let model = DiscountModel::fit(&tables)?;
    Ok((tables, model))
}

/// A fleet that starts at the autoscaler's floor: capacity is the
/// scaler's call, not the initial layout's.
fn cluster_config(floor: usize) -> ClusterConfig {
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), floor, CORES_PER_MACHINE)
        .serving_scale(0.05)
        .slice_ms(20)
}

fn autoscaler(high_water: f64, floor: usize, ceiling: usize) -> AutoscalerConfig {
    AutoscalerConfig::new(MachineConfig::new(CORES_PER_MACHINE).seed(0x5CA1E))
        .high_water(high_water)
        .low_water(1.1)
        .machine_bounds(floor, ceiling)
        .cooldown_ms(250)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    // One trace minute compressed to this many simulated ms; the cost
    // column converts machine time back to trace scale.
    let minute_ms: u64 = if smoke { 300 } else { 600 };
    let marks: &[f64] = if smoke {
        &[1.5, 2.5, 4.0]
    } else {
        &[1.4, 1.8, 2.5, 3.5, 5.0]
    };
    let (floor, ceiling) = (2, 12);

    // The day (or days) under study.
    let days: Vec<AzureDataset> = match std::env::var_os("AZURE_TRACE_DIR") {
        Some(dir) => {
            let (day, ingest) =
                AzureDataset::from_dir_with(&dir, IngestMode::Lossy(LossyIngest::ImputeMedians))?;
            println!("loaded real trace day from {}:", dir.to_string_lossy());
            println!("{ingest}");
            vec![day]
        }
        None => {
            let day = fixture::dataset();
            println!(
                "no AZURE_TRACE_DIR set — chaining two copies of the bundled \
                 fixture day ({} functions, {} minutes each)",
                day.functions().len(),
                day.minutes(),
            );
            vec![day.clone(), day]
        }
    };
    let config = ExpandConfig::new(SEED).minute_ms(minute_ms);
    let trace_minutes: usize = days.iter().map(AzureDataset::minutes).sum();
    let events = multi_day_source(&days, config)?.size_hint().0;
    println!(
        "replaying {events} invocations over {trace_minutes} trace minutes \
         (compressed to {:.1} s), fleet {floor}–{ceiling} machines\n",
        (trace_minutes as u64 * minute_ms) as f64 / 1000.0,
    );

    let (tables, model) = calibration()?;
    let mut frontier: Vec<FrontierPoint> = Vec::new();

    // Static baseline: the peak-provisioned fleet a reactive scaler is
    // supposed to undercut.
    {
        let mut cluster = Cluster::build(cluster_config(8), tables.clone(), model.clone())?;
        let report = ClusterDriver::new(LitmusAware::new())
            .replay_source(&mut cluster, multi_day_source(&days, config)?)?;
        frontier.push(FrontierPoint {
            label: "static-8".into(),
            report,
            events,
        });
    }
    for &mark in marks {
        let mut cluster = Cluster::build(cluster_config(floor), tables.clone(), model.clone())?;
        let report = ClusterDriver::new(LitmusAware::new())
            .autoscale(autoscaler(mark, floor, ceiling))
            .replay_source(&mut cluster, multi_day_source(&days, config)?)?;
        frontier.push(FrontierPoint {
            label: format!("high={mark:.1}"),
            report,
            events,
        });
    }

    // Machine time at trace scale: sim machine-ms × (real minute /
    // compressed minute), in hours.
    let trace_hours =
        |report: &ClusterReport| report.machine_ms() as f64 * (60_000.0 / minute_ms as f64) / 3.6e6;

    println!("── cost/SLO frontier (reactive water-mark sweep) ─────────────────────────");
    println!(
        "{:>10}  {:>4}  {:>9}  {:>9}  {:>8}  {:>8}  {:>8}  {:>5}  {:>9}",
        "config",
        "peak",
        "mach-s",
        "mach-h*",
        "p50 slow",
        "p99 slow",
        "lat ms",
        "up/rt",
        "completed",
    );
    for point in &frontier {
        let report = &point.report;
        let ups = report
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleKind::Up)
            .count();
        let retires = report
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleKind::Retire)
            .count();
        // One sort per report: both quantiles from the batch API.
        let quantiles = report.predicted_slowdown_quantiles(&[0.5, 0.99]);
        println!(
            "{:>10}  {:>4}  {:>9.1}  {:>9.2}  {:>8.3}  {:>8.3}  {:>8.1}  {:>2}/{:<2}  {:>5}/{:<5}",
            point.label,
            report.peak_machines,
            report.machine_ms() as f64 / 1000.0,
            trace_hours(report),
            quantiles[0],
            quantiles[1],
            report.mean_latency_ms,
            ups,
            retires,
            report.completed,
            point.events,
        );
    }
    println!("(* machine-hours at trace scale: sim machine-time × 60 000/{minute_ms} ms minutes)");

    // The frontier's defining trade: the most aggressive mark may not
    // serve a worse p99 than the laziest, and the laziest may not buy
    // more capacity than the most aggressive.
    let aggressive = &frontier[1].report;
    let lazy = &frontier[frontier.len() - 1].report;
    let aggressive_p99 = aggressive.predicted_slowdown_quantile(0.99);
    let lazy_p99 = lazy.predicted_slowdown_quantile(0.99);
    assert!(
        aggressive_p99 <= lazy_p99 + 1e-9,
        "aggressive scaling must not worsen the p99 tail"
    );
    assert!(
        lazy.machine_ms() <= aggressive.machine_ms(),
        "lazy scaling must not cost more machine-time"
    );
    for point in &frontier {
        assert_eq!(
            point.report.completed + point.report.unfinished,
            point.events,
            "{}: invocations leaked",
            point.label
        );
        assert_eq!(
            point.report.predicted_slowdowns.len(),
            point.events,
            "{}: one slowdown sample per dispatch",
            point.label
        );
    }
    println!(
        "\nreactive frontier spans {:.2}→{:.2} trace machine-hours for p99 \
         {:.3}→{:.3}; a predictive scaler's target is the left tail at the \
         right cost.",
        trace_hours(aggressive),
        trace_hours(lazy),
        aggressive_p99,
        lazy_p99,
    );
    Ok(())
}
