//! Pricing-scheme shoot-out across the paper's 14 tenant functions
//! (the Fig. 11 experiment, plus the POPPA baseline with its overhead
//! bill that motivates Litmus in §4).
//!
//! Run with: `cargo run --release --example pricing_comparison`

use litmus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    println!("building tables + model…");
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22, 30])
        .reference_scale(0.1)
        .build()?;
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);

    println!("running the §7.1 experiment (26 co-runners, one per core)…\n");
    let config = HarnessConfig::new(spec)
        .env(CoRunEnv::OnePerCore { co_runners: 26 })
        .mix_scale(0.2);
    let results = PricingExperiment::new(config).reps(5).test_scale(0.2).run(
        &pricing,
        &tables,
        &suite::test_benchmarks(),
    )?;

    // POPPA: near-ideal prices, but every sample stalls all co-runners.
    let poppa = PoppaSampler::new(1.0, 100.0);

    println!(
        "{:14} {:>10} {:>10} {:>10} {:>12}",
        "function", "litmus", "ideal", "error", "poppa-cost*"
    );
    for invoice in results.invoices() {
        let duration_ms = invoice.counters.cycles / 2.8e6;
        let overhead = poppa.overhead_core_ms(duration_ms, 27);
        println!(
            "{:14} {:>10.4} {:>10.4} {:>+10.4} {:>10.0}ms",
            invoice.function,
            invoice.litmus_normalized(),
            invoice.ideal_normalized(),
            invoice.total_error(),
            overhead
        );
    }
    println!(
        "\ngmean litmus price {:.4} (discount {:.1}%), ideal {:.4} (discount {:.1}%)",
        results.gmean_litmus_price(),
        results.mean_litmus_discount() * 100.0,
        results.gmean_ideal_price(),
        results.mean_ideal_discount() * 100.0,
    );
    println!(
        "discount gap vs ideal: {:.2}% (paper: 0.4% in this configuration)",
        results.discount_gap() * 100.0
    );
    println!(
        "\n*poppa-cost: co-runner core-milliseconds stalled by POPPA sampling\n\
         (1 ms window / 100 ms interval) to price the same invocation —\n\
         the overhead Litmus avoids entirely."
    );
    Ok(())
}
