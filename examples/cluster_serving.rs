//! Cluster serving: replay a multi-tenant trace across many machines
//! under every placement policy and compare routing quality.
//!
//! Demonstrates the `litmus-cluster` layer end to end: a ≥10k-event
//! trace mixing three tenant archetypes (steady interactive traffic,
//! bursty analytics, diurnal batch) is served by an 8-machine cluster
//! whose first half carries heavy background load. Litmus-aware
//! placement — routing on the congestion estimates the provider already
//! collects for pricing (paper §5.1) — steers traffic off the hot
//! machines, cutting both the presumed slowdown and the latency tenants
//! experience, while sharded per-tenant billing streams in constant
//! space. A final *elastic* run adds slice-boundary work stealing and
//! probe-driven autoscaling: the fleet starts at half size, grows
//! through the bursts on the same free probe signal, and drains back
//! down — with every re-dispatch and scale event in the report.
//!
//! Run with: `cargo run --release --example cluster_serving`

use litmus::platform::ArrivalPattern;
use litmus::prelude::*;
use litmus::workloads::suite::{self, TenantClass};

const MACHINES: usize = 8;
const CORES_PER_MACHINE: usize = 8;
const DURATION_MS: u64 = 18_000;

fn trace() -> InvocationTrace {
    InvocationTrace::multi_tenant(
        vec![
            // Tenant 0: latency-sensitive request handlers, steady rate.
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Steady { rate_per_s: 350.0 },
            },
            // Tenant 1: analytics jobs arriving in sharp bursts.
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Analytics),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 60.0,
                    burst_rate_per_s: 600.0,
                    period_ms: 2_000,
                    burst_ms: 300,
                },
            },
            // Tenant 2: batch encoding with a day/night swing.
            TenantTraffic {
                tenant: TenantId(2),
                pool: suite::tenant_pool(TenantClass::Batch),
                pattern: ArrivalPattern::Diurnal {
                    mean_rate_per_s: 120.0,
                    amplitude: 0.9,
                    period_ms: DURATION_MS,
                },
            },
        ],
        DURATION_MS,
        2024,
    )
    .expect("tenant pools are non-empty")
}

/// Half the machines are pre-loaded with background fillers — the
/// skewed fleet where placement actually matters.
fn cluster_config() -> ClusterConfig {
    let machines: Vec<_> = (0..MACHINES)
        .map(|i| {
            let background = if i < MACHINES / 2 { 20 } else { 0 };
            MachineConfig::new(CORES_PER_MACHINE)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(80)
                .seed(0xFEED + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), MACHINES, CORES_PER_MACHINE)
        .machines(machines)
        .serving_scale(0.05)
        .slice_ms(20)
}

fn run_policy<P: PlacementPolicy>(
    policy: P,
    tables: &PricingTables,
    model: &DiscountModel,
    trace: &InvocationTrace,
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    run_driver(
        ClusterDriver::new(policy),
        cluster_config(),
        tables,
        model,
        trace,
    )
}

fn run_driver<P: PlacementPolicy>(
    mut driver: ClusterDriver<P>,
    config: ClusterConfig,
    tables: &PricingTables,
    model: &DiscountModel,
    trace: &InvocationTrace,
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    let mut cluster = Cluster::build(config, tables.clone(), model.clone())?;
    let started = std::time::Instant::now(); // lint:allow(wall-clock): progress timing printed for the human running the example; never feeds simulated state
    let outcome = driver.replay(&mut cluster, trace)?;
    let wall = started.elapsed();
    println!(
        "\n── {} ──────────────────────────────────────────────",
        outcome.policy
    );
    println!(
        "  completed {}/{} ({} unfinished), {:.0} invocations/s wall",
        outcome.completed,
        trace.len(),
        outcome.unfinished,
        outcome.completed as f64 / wall.as_secs_f64()
    );
    println!(
        "  mean predicted slowdown {:.4}, mean latency {:.1} ms",
        outcome.mean_predicted_slowdown, outcome.mean_latency_ms
    );
    println!("  dispatches per machine {:?}", outcome.dispatch_counts);
    if outcome.redispatched > 0 {
        println!(
            "  work stealing re-dispatched {} invocations in {} transfers",
            outcome.redispatched,
            outcome.steal_events().len()
        );
    }
    if !outcome.scale_events().is_empty() {
        let count = |kind| {
            outcome
                .scale_events()
                .iter()
                .filter(|e| e.kind == kind)
                .count()
        };
        println!(
            "  autoscaler: {} scale-ups, {} drains, {} retirements (peak {} machines)",
            count(ScaleKind::Up),
            count(ScaleKind::DrainStart),
            count(ScaleKind::Retire),
            outcome.peak_machines,
        );
        // Why each decision fired — the reason is first-class on the
        // event, not decoded from the signal value.
        for event in outcome.scale_events() {
            println!(
                "    {:>6} ms: {:?} {} ({}, signal {:.2})",
                event.at_ms, event.kind, event.machine, event.reason, event.signal,
            );
        }
        for lifetime in outcome.machine_lifetimes() {
            if lifetime.born_ms > 0 {
                println!(
                    "    {} born at {:>6} ms, {} served {:>4}",
                    lifetime.machine,
                    lifetime.born_ms,
                    match lifetime.retired_ms {
                        Some(at) => format!("retired {at:>6} ms,"),
                        None => "alive at end,      ".to_owned(),
                    },
                    lifetime.completed,
                );
            }
        }
    }
    println!("  per-tenant invoices:");
    for (tenant, summary) in outcome.billing.tenants() {
        println!(
            "    {tenant}: {:>5} invocations, commercial {:>12.0}, litmus \
             {:>12.0}, discount {:>5.2}% (ideal {:>5.2}%)",
            summary.len(),
            summary.commercial_revenue(),
            summary.litmus_revenue(),
            summary.average_discount() * 100.0,
            summary.ideal_discount() * 100.0,
        );
    }
    Ok(outcome)
}

/// The elastic fleet starts at half size; the probe signal grows it.
/// A tighter concurrency cap makes queueing (and therefore stealing)
/// visible under the bursts.
fn elastic_config() -> ClusterConfig {
    let machines: Vec<_> = (0..MACHINES / 2)
        .map(|i| {
            let background = if i < MACHINES / 4 { 20 } else { 0 };
            MachineConfig::new(CORES_PER_MACHINE)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(80)
                .max_inflight(16)
                .seed(0xFEED + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), MACHINES / 2, CORES_PER_MACHINE)
        .machines(machines)
        .serving_scale(0.05)
        .slice_ms(20)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    println!("building calibration tables…");
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()?;
    let model = DiscountModel::fit(&tables)?;

    let trace = trace();
    println!(
        "replaying {} invocations over {} s across {MACHINES} machines \
         ({} hot, {} cool)…",
        trace.len(),
        DURATION_MS / 1000,
        MACHINES / 2,
        MACHINES - MACHINES / 2,
    );
    assert!(trace.len() >= 10_000, "trace has {} events", trace.len());

    let rr = run_policy(RoundRobin::new(), &tables, &model, &trace)?;
    let ll = run_policy(LeastLoaded::new(), &tables, &model, &trace)?;
    let la = run_policy(LitmusAware::new(), &tables, &model, &trace)?;

    println!(
        "\nelastic serving: start at {} machines, steal backlog at slice \
         boundaries, scale on the fleetwide probe signal…",
        MACHINES / 2
    );
    let template = MachineConfig::new(CORES_PER_MACHINE)
        .warmup_ms(80)
        .max_inflight(16)
        .seed(0xE1A571C);
    let elastic = run_driver(
        ClusterDriver::new(LitmusAware::new())
            .stealing(StealingConfig::default().backlog_threshold(3))
            .autoscale(
                AutoscalerConfig::new(template)
                    .high_water(2.2)
                    .low_water(1.4)
                    .machine_bounds(MACHINES / 2, MACHINES + 4)
                    .cooldown_ms(400),
            ),
        elastic_config(),
        &tables,
        &model,
        &trace,
    )?;

    println!("\n── summary ─────────────────────────────────────────────");
    for (label, outcome) in [
        ("round-robin", &rr),
        ("least-loaded", &ll),
        ("litmus-aware", &la),
        ("elastic", &elastic),
    ] {
        println!(
            "  {:>12}: predicted slowdown {:.4}, latency {:>6.1} ms, \
             tenant compensation {:>12.0}, peak machines {}",
            label,
            outcome.mean_predicted_slowdown,
            outcome.mean_latency_ms,
            outcome.billing.total().total_compensation(),
            outcome.peak_machines,
        );
    }
    assert!(
        la.mean_predicted_slowdown < rr.mean_predicted_slowdown,
        "litmus-aware placement must beat round-robin on a skewed cluster"
    );
    assert_eq!(
        elastic.completed,
        trace.len(),
        "the elastic fleet must finish the whole trace"
    );
    assert!(
        elastic
            .scale_events()
            .iter()
            .any(|e| e.kind == ScaleKind::Up),
        "the bursts must push the fleet past its starting size"
    );
    println!(
        "\nlitmus-aware routing cut the mean presumed slowdown by {:.1}% \
         vs round-robin (and latency by {:.1}%) using only the probes \
         pricing already paid for.",
        (1.0 - la.mean_predicted_slowdown / rr.mean_predicted_slowdown) * 100.0,
        (1.0 - la.mean_latency_ms / rr.mean_latency_ms) * 100.0,
    );
    Ok(())
}
