//! Live congestion monitoring with Litmus tests (paper Fig. 7): four
//! cores, functions arriving over time, each startup probing the
//! machine state. A memory-hungry "Function #1" drives the congestion
//! level up; once it finishes, probes read a quiet machine again.
//!
//! Run with: `cargo run --release --example congestion_monitor`

use litmus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 22])
        .languages([Language::Python])
        .reference_scale(0.08)
        .build()?;
    let baseline = *tables.baseline(Language::Python)?;

    let mut sim = Simulator::new(spec);

    // Function #1: a memory-intensive tenant on core 1 (≈450 ms at its
    // congestion-inflated CPI of ≈4).
    let hog = ExecutionProfile::builder("function-1-memhog")
        .phase(ExecPhase::new(3.0e8, 0.6, 18.0, 0.75, 0.9, 120.0))
        .build()?;
    sim.launch(hog, Placement::pinned(1))?;

    // Background light tenant on core 2.
    let light = suite::by_name("fib-go").unwrap().profile().scaled(3.0)?;
    sim.launch(light, Placement::pinned(2))?;

    println!("time(ms)  probe-shared-slowdown  machine-L3/ms  congestion-level");
    let probe_profile = suite::by_name("auth-py")
        .unwrap()
        .profile()
        .startup_only()?;
    let mut t = 0;
    while t < 1400 {
        // Launch a Litmus probe on core 3 (a fresh function starting).
        let id = sim.launch(probe_profile.clone(), Placement::pinned(3))?;
        while sim.state(id)? == litmus::sim::InstanceState::Active {
            sim.step();
        }
        let report = sim.report(id)?;
        let startup = report.startup.as_ref().expect("probe startup");
        let reading = LitmusReading::from_startup(&baseline, startup)?;
        // A scalar "level" in the Fig. 7 spirit from the probe signals.
        let level = (reading.shared_slowdown - 1.0) * 8.0 + (reading.l3_miss_rate / 50_000.0);
        println!(
            "{:7}  {:>20.3}  {:>13.0}  {:>16.2}",
            t, reading.shared_slowdown, reading.l3_miss_rate, level
        );
        // Idle gap until the next function arrival.
        let next = sim.now_ms() + 150;
        while sim.now_ms() < next {
            sim.step();
        }
        t = sim.now_ms() as i64 as i32;
    }
    println!("\n(function #1 completes around 450 ms — the probes see the drop)");
    Ok(())
}
