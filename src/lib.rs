//! **Litmus** — a full reproduction of *Litmus: Fair Pricing for
//! Serverless Computing* (Pei, Wang, Shin — ASPLOS '24) in Rust.
//!
//! Serverless tenants pay for execution time, so when a provider packs a
//! machine and everyone slows down, tenants pay *more* for *worse*
//! service. Litmus pricing fixes the incentive: every function's
//! language-runtime startup doubles as a **Litmus test** that reads the
//! machine's congestion at zero extra cost, and the bill is discounted
//! in proportion to the slowdown that congestion is presumed to cause.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`stats`] | `litmus-stats` | regressions, interpolation, summaries |
//! | [`sim`] | `litmus-sim` | multicore contention simulator + PMU |
//! | [`workloads`] | `litmus-workloads` | Table-1 benchmarks, startups, CT-Gen/MB-Gen |
//! | [`core`] | `litmus-core` | Litmus tests, tables, discount model, pricing engines |
//! | [`platform`] | `litmus-platform` | co-run harness and evaluation experiments |
//! | [`cluster`] | `litmus-cluster` | multi-machine serving, Litmus-aware placement, sharded billing |
//! | [`trace`] | `litmus-trace` | Azure Functions trace ingestion, characterization, streaming replay |
//! | [`forecast`] | `litmus-forecast` | online arrival-rate forecasting, bands, backtesting |
//! | [`telemetry`] | `litmus-telemetry` | deterministic metrics, event timeline, flight recorder |
//! | [`observe`] | `litmus-observe` | SLO burn-rate alerting, fairness rollups, export tooling |
//!
//! The paper's hardware testbed (Cascade Lake Xeon, Linux perf, CPython/
//! Node.js/Go) is replaced by a deterministic analytic simulator — see
//! `DESIGN.md` for the substitution map and `EXPERIMENTS.md` for
//! paper-vs-measured results on every figure.
//!
//! # Quickstart
//!
//! ```no_run
//! use litmus::core::{DiscountModel, LitmusPricing, TableBuilder};
//! use litmus::platform::{CoRunEnv, HarnessConfig, PricingExperiment};
//! use litmus::sim::MachineSpec;
//! use litmus::workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Provider builds tables offline by stressing the machine.
//! let spec = MachineSpec::cascade_lake();
//! let tables = TableBuilder::new(spec.clone()).build()?;
//! let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);
//!
//! // 2. Evaluate pricing in a 26-co-runner environment (paper §7.1).
//! let config = HarnessConfig::new(spec).env(CoRunEnv::OnePerCore { co_runners: 26 });
//! let results = PricingExperiment::new(config)
//!     .run(&pricing, &tables, &suite::test_benchmarks())?;
//! println!(
//!     "Litmus discount {:.1}% vs ideal {:.1}%",
//!     results.mean_litmus_discount() * 100.0,
//!     results.mean_ideal_discount() * 100.0,
//! );
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use litmus_cluster as cluster;
pub use litmus_core as core;
pub use litmus_forecast as forecast;
pub use litmus_observe as observe;
pub use litmus_platform as platform;
pub use litmus_sim as sim;
pub use litmus_stats as stats;
pub use litmus_telemetry as telemetry;
pub use litmus_trace as trace;
pub use litmus_workloads as workloads;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use litmus_cluster::{
        AutoscalerConfig, BillingAggregator, Cluster, ClusterConfig, ClusterDriver, ClusterReport,
        EventClass, EventQueue, ForecastSample, LeastLoaded, LitmusAware, MachineConfig, MachineId,
        PlacementPolicy, PredictiveConfig, ProbeFreshness, ReplayEvent, RoundRobin, ScaleEvent,
        ScaleKind, ScaleReason, ScalingPolicy, StealEvent, StealingConfig, SteppingMode,
    };
    pub use litmus_core::{
        BillingLedger, BillingSummary, CommercialPricing, CongestionIndex, DiscountModel,
        IdealPricing, Invoice, LitmusPricing, LitmusReading, Method, PoppaSampler, Price,
        PricingTables, StartupBaseline, TableBuilder,
    };
    pub use litmus_forecast::{
        backtest_series, backtest_source, BacktestConfig, BacktestReport, BandedForecaster, Ewma,
        Forecaster, ForecasterSpec, HoltLinear, HorizonForecast, SeasonalHoltWinters,
    };
    pub use litmus_observe::{
        Alert, BurnRateRule, CompletionSample, SloEngine, SloKind, SloReport, SloSpec, TenantRollup,
    };
    pub use litmus_platform::{
        AdmissionController, AdmissionDecision, CoRunEnv, CoRunHarness, CongestionMonitor,
        CountingSource, ExperimentResults, HarnessConfig, InvocationTrace, PricingExperiment,
        TenantId, TenantTraffic, TraceSource,
    };
    pub use litmus_sim::{
        ExecPhase, ExecutionProfile, FrequencyGovernor, MachineSpec, Placement, PmuCounters,
        Simulator,
    };
    pub use litmus_telemetry::{
        FlightRecorder, LogHistogram, Registry, StageProfile, Telemetry, TelemetryConfig, Timeline,
        TimelineEvent, TraceId, TraceSampler,
    };
    pub use litmus_trace::{AzureDataset, ExpandConfig, IntraMinute, TraceStats, TraceTransform};
    pub use litmus_workloads::{
        suite, BackfillPool, Benchmark, Language, TrafficGenerator, WorkloadMix,
    };
}
