#!/usr/bin/env bash
# Download the full Azure Functions 2019 trace and arrange it for
# `AzureDataset::from_dir`.
#
# The dataset (≈1.2 GB compressed, 14 days) is published by Microsoft
# with *Serverless in the Wild* (ATC '20):
#   https://github.com/Azure/AzurePublicDataset
#   (AzureFunctionsDataset2019.md documents the schema.)
#
# This script fetches the archive, extracts it, and sorts each day's
# three CSVs into their own directory:
#
#   <out>/d01/invocations_per_function_md.anon.d01.csv
#   <out>/d01/function_durations_percentiles.anon.d01.csv
#   <out>/d01/app_memory_percentiles.anon.d01.csv
#   <out>/d02/…
#
# No renaming is needed: `AzureDataset::from_dir` discovers families by
# file-name *stem* (`invocations_per_function*`, `function_durations*`,
# `app_memory*`), so the published names match as-is, and a directory
# holding several shards of one family is merged automatically.
#
# The real dataset is incomplete — many functions have no duration or
# memory row, and some duration rows have `Count == 0` — so ingest days
# with a lossy mode, e.g.:
#
#   AzureDataset::from_dir_with(path, IngestMode::Lossy(LossyIngest::ImputeMedians))
#
# which returns the per-category drop/impute accounting alongside the
# dataset. Chain several day directories with
# `litmus_trace::multi_day_source` for week-scale streaming replays,
# and see `examples/autoscale_study.rs` (`AZURE_TRACE_DIR=<out>/d01`)
# for an end-to-end consumer.
#
# CI never runs this: the build environment is offline, and the bundled
# fixture under crates/trace/fixtures/ keeps every test, bench and
# example self-contained. Use this only to evaluate against the real
# dataset.

set -euo pipefail

ARCHIVE_URL="https://azurepublicdatasettraces.blob.core.windows.net/azurepublicdatasetv2/azurefunctions_dataset2019/azurefunctions-dataset2019.tar.xz"

usage() {
    echo "usage: $0 [-o OUT_DIR] [-d DAYS]" >&2
    echo "  -o OUT_DIR  where to put the per-day directories (default: ./azure-trace-2019)" >&2
    echo "  -d DAYS     how many days to arrange, 1-14 (default: 14)" >&2
    exit 1
}

out_dir="./azure-trace-2019"
days=14
while getopts "o:d:h" opt; do
    case "$opt" in
        o) out_dir="$OPTARG" ;;
        d) days="$OPTARG" ;;
        *) usage ;;
    esac
done
if ! [[ "$days" =~ ^[0-9]+$ ]] || [ "$days" -lt 1 ] || [ "$days" -gt 14 ]; then
    echo "error: DAYS must be between 1 and 14, got '$days'" >&2
    exit 1
fi

fetch() {
    # curl or wget, whichever the machine has.
    local url="$1" dest="$2"
    if command -v curl >/dev/null 2>&1; then
        curl --fail --location --retry 3 --continue-at - -o "$dest" "$url"
    elif command -v wget >/dev/null 2>&1; then
        wget --tries=3 --continue -O "$dest" "$url"
    else
        echo "error: neither curl nor wget is available" >&2
        exit 1
    fi
}

mkdir -p "$out_dir"
archive="$out_dir/azurefunctions-dataset2019.tar.xz"

if [ -s "$archive" ]; then
    echo "archive already present: $archive (delete it to re-download)"
else
    echo "downloading ≈1.2 GB from $ARCHIVE_URL …"
    fetch "$ARCHIVE_URL" "$archive"
fi

echo "extracting…"
tar -xJf "$archive" -C "$out_dir"

echo "arranging days 01-$(printf '%02d' "$days") into per-day directories…"
# %02g, not `seq -w`: -w only pads to the widest value's width, so
# `-d 3` would yield d1/d2/d3 and match none of the *.dNN.csv names.
for day in $(seq -f '%02g' 1 "$days"); do
    day_dir="$out_dir/d$day"
    mkdir -p "$day_dir"
    moved=0
    for stem in invocations_per_function function_durations app_memory; do
        # The published names carry suffixes (…_md.anon.dNN.csv,
        # …_percentiles.anon.dNN.csv); match by stem + day, like
        # AzureDataset::from_dir does by stem.
        for f in "$out_dir/$stem"*".d$day.csv"; do
            [ -e "$f" ] || continue
            mv "$f" "$day_dir/"
            moved=$((moved + 1))
        done
    done
    if [ "$moved" -eq 0 ]; then
        echo "  d$day: no files found (already arranged, or extraction incomplete)" >&2
    else
        echo "  d$day: $moved files"
    fi
done

echo
echo "done. ingest a day with:"
echo "  AzureDataset::from_dir_with(\"$out_dir/d01\", IngestMode::Lossy(LossyIngest::ImputeMedians))"
echo "or replay it straight away:"
echo "  AZURE_TRACE_DIR=$out_dir/d01 cargo run --release --example autoscale_study"
