#!/usr/bin/env bash
# Download the full Azure Functions 2019 trace and arrange it for
# `AzureDataset::from_dir`.
#
# STATUS: stub — the repo's CI environment is offline, so this script
# documents the procedure instead of running in CI. The bundled
# fixture under crates/trace/fixtures/ keeps every test and example
# self-contained; use this only to evaluate against the real dataset.
#
# The dataset (≈1.2 GB compressed) is published by Microsoft with
# *Serverless in the Wild* (ATC '20):
#   https://github.com/Azure/AzurePublicDataset
#   (AzureFunctionsDataset2019.md has the access link and schema.)
#
# Layout expected by `AzureDataset::from_dir(<day dir>)`:
#   <out>/d01/invocations_per_function.csv
#   <out>/d01/function_durations.csv
#   <out>/d01/app_memory.csv
#
# Follow-ups tracked in ROADMAP.md:
#   * shard-aware loading (the real dataset splits each day across
#     files; from_dir currently wants one file per family);
#   * duration/memory rows missing for some functions in the real
#     dataset — relax the strict join behind a lossy-ingest option.

set -euo pipefail

echo "error: this is a documented stub — the full Azure Functions 2019" >&2
echo "trace must be fetched manually (see the comments in this script)." >&2
echo "Everything in-repo runs against crates/trace/fixtures/." >&2
exit 1
