//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate vendors
//! the subset of proptest this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`strategy::Strategy`] implemented for primitive ranges, tuples of
//!   strategies, [`strategy::Just`] and [`strategy::Strategy::prop_map`];
//! * `prop::collection::vec`.
//!
//! Differences from upstream: inputs are drawn from a per-test
//! deterministic RNG (seeded from the test name), there is **no
//! shrinking**, and the default case count is 64 rather than 256 to
//! keep the suite fast. On failure the case index and generated seed
//! are reported so a failure is reproducible by rerunning the test.

#![forbid(unsafe_code)]

// The `proptest!` expansion needs the RNG in the *consuming* crate,
// which does not necessarily depend on `rand` itself.
#[doc(hidden)]
pub use rand as __rand;

/// Strategies: how input values are generated.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking —
    /// `generate` directly produces a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types: configuration and failure signalling.
pub mod test_runner {
    use std::fmt;

    /// Runner configuration; only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps this workspace's
            // simulation-heavy properties fast while still exploring.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test seed derived from the test's name
    /// (FNV-1a), so distinct properties explore distinct streams but
    /// every run of the same test is identical.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Everything a property test needs, for glob import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror of upstream's `prop::` path (e.g.
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        // Bind to a bool first: negating a raw `<`/`>` expression trips
        // clippy::neg_cmp_op_on_partial_ord at every expansion site.
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        let holds: bool = left == right;
        if !holds {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Declares property tests. Supports the subset of upstream syntax used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) {
///         prop_assert!(x < n as f64 + 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_for(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                // Bind inputs with `let` (not closure parameters) so the
                // strategies' value types drive inference inside the body.
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case + 1, config.cases, seed, err,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn halves() -> impl Strategy<Value = f64> {
        (0.0f64..1.0).prop_map(|v| v / 2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            x in 0.0f64..1.0,
            (a, b) in (1usize..10, 5u64..9),
            h in halves(),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&a), "a = {a}");
            prop_assert!((5..9).contains(&b));
            prop_assert!(h < 0.5);
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(-1.0f64..1.0, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(xs.len(), xs.capacity().min(xs.len()));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 1/64")]
    fn failures_report_case_and_seed() {
        // No `#[test]` attribute on the inner fn: it is invoked
        // manually (rustc cannot register nested test items anyway).
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }

    #[test]
    fn same_test_name_reproduces_inputs() {
        let seed = crate::test_runner::seed_for("a::b::c");
        assert_eq!(seed, crate::test_runner::seed_for("a::b::c"));
        assert_ne!(seed, crate::test_runner::seed_for("a::b::d"));
    }
}
