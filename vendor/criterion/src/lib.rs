//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate vendors
//! the subset of criterion this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `bench_function` / `bench_with_input` / `sample_size` / `finish`),
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up,
//! auto-calibrated to a target measurement time, then reports the mean,
//! minimum and maximum per-iteration wall time. There are no HTML
//! reports, baselines or outlier analysis.
//!
//! Like upstream criterion, passing `--test` on the bench binary's
//! command line (`cargo bench -- --test`) — or setting the
//! `CRITERION_SMOKE` environment variable — switches to a smoke
//! profile: every benchmark body runs exactly once, so CI can prove
//! benches still build and run without paying for measurements.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time spent measuring each benchmark.
const TARGET_MEASUREMENT: Duration = Duration::from_millis(300);
/// Iteration count ceiling, so trivially cheap bodies still terminate
/// calibration quickly.
const MAX_ITERS: u64 = 1_000_000;

/// Whether the smoke profile is active: run each body once, skip
/// calibration. Mirrors upstream's `cargo bench -- --test` behaviour.
fn smoke_profile() -> bool {
    std::env::args().any(|arg| arg == "--test") || std::env::var_os("CRITERION_SMOKE").is_some()
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `body`, auto-calibrating the iteration count (or running
    /// it exactly once under the smoke profile).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + calibration run (the whole measurement in smoke
        // mode).
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        if smoke_profile() {
            self.result = Some(Sample {
                mean: once,
                min: once,
                max: once,
                iters: 1,
            });
            return;
        }
        let iters =
            (TARGET_MEASUREMENT.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..iters {
            let start = Instant::now();
            black_box(body());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        self.result = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            max,
            iters,
        });
    }
}

fn report(name: &str, sample: Option<Sample>) {
    match sample {
        Some(s) => println!(
            "{name:<52} time: [{:>12?} {:>12?} {:>12?}]  ({} iters)",
            s.min, s.mean, s.max, s.iters
        ),
        None => println!("{name:<52} (no measurement taken)"),
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this shim auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this shim auto-calibrates instead.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        body(&mut bencher);
        report(&format!("{}/{}", self.name, id), bencher.result);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        body(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), bencher.result);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver handed to each target function.
#[derive(Debug, Default)]
pub struct Criterion {
    // Non-unit so `Criterion::default()` (what `criterion_group!`
    // expands to) does not trip clippy::default_constructed_unit_structs
    // in consuming crates.
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        body(&mut bencher);
        report(name, bencher.result);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// upstream's plain form `criterion_group!(name, target, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| black_box((0..100).sum::<u64>())));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("8x").to_string(), "8x");
    }
}
