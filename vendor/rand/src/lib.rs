//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this crate vendors
//! exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over primitive
//! ranges and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but every use in
//! this workspace only requires determinism for a fixed seed, which
//! this provides.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in [0, 1) from the top 53 bits of a `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift; the tiny modulo bias is
                // irrelevant for simulation workload draws.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + draw as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256** under the hood).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits for p=0.3");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1_000_000) == b.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 4);
    }
}
